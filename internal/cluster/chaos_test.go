// Chaos e2e suite (run via `make chaos`, race-enabled): an in-process
// 3-replica cluster where replicas can be killed (connections abort and
// the serve.Server really shuts down, losing its queue) and revived
// (a fresh serve.Server behind the same URL). The suite drives the
// coordinator through the public v1 API with the typed client and
// asserts the headline guarantee — zero lost acknowledged jobs — plus
// membership transitions, breaker behaviour, and bounded tail latency
// (every client call runs under a hard HTTP timeout).
//
// Fault injection is deterministic: the faults registry is seeded from
// FLATDD_CHAOS_SEED (default 1), so a failing run reproduces by
// exporting the seed it printed.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"flatdd/internal/cluster"
	"flatdd/internal/faults"
	"flatdd/internal/obs"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// chaosSeed feeds the faults registry; override with FLATDD_CHAOS_SEED.
func chaosSeed(t *testing.T) int64 {
	seed := int64(1)
	if s := os.Getenv("FLATDD_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FLATDD_CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (reproduce with FLATDD_CHAOS_SEED=%d)", seed, seed)
	return seed
}

// chaosReplica is one killable serve replica behind a stable URL. While
// down, its handler aborts every connection (the client sees a genuine
// network error, not an HTTP status), and the underlying serve.Server
// has really been shut down — its queued jobs are gone, exactly like a
// process kill. Revive swaps in a fresh, empty serve.Server.
type chaosReplica struct {
	name string
	cfg  serve.Config
	ts   *httptest.Server

	mu      sync.Mutex
	srv     *serve.Server
	handler http.Handler
	down    bool
}

func (r *chaosReplica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	down, h := r.down, r.handler
	r.mu.Unlock()
	if down || h == nil {
		panic(http.ErrAbortHandler)
	}
	h.ServeHTTP(w, req)
}

// kill aborts the replica: new connections die at the handler and the
// serve.Server drains away its queue (canceled jobs, lost state).
func (r *chaosReplica) kill() {
	r.mu.Lock()
	if r.down {
		r.mu.Unlock()
		return
	}
	r.down = true
	srv := r.srv
	r.srv, r.handler = nil, nil
	r.mu.Unlock()
	if srv != nil {
		srv.Shutdown()
	}
}

// revive brings the replica back as a fresh process: empty queue, empty
// result cache, same URL.
func (r *chaosReplica) revive() {
	srv := serve.New(r.cfg)
	r.mu.Lock()
	r.srv = srv
	r.handler = srv.Handler()
	r.down = false
	r.mu.Unlock()
}

// fleet is the in-process cluster: N chaos replicas, one coordinator,
// and a typed client pointed at the coordinator.
type fleet struct {
	t        *testing.T
	replicas []*chaosReplica
	coord    *cluster.Coordinator
	front    *httptest.Server
	c        *client.Client
	reg      *obs.Registry
	flts     *faults.Registry
}

// chaosClusterConfig is tuned for test wall-clock: probes every 20ms,
// dead after 2 consecutive failures (~60ms detection), fast retries,
// breaker cooldown short enough to recover inside a test.
func chaosClusterConfig() cluster.Config {
	return cluster.Config{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        2,
		RPCTimeout:       2 * time.Second,
		MaxRetries:       2,
		RetryBaseDelay:   5 * time.Millisecond,
		RetryMaxDelay:    50 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  100 * time.Millisecond,
	}
}

func newFleet(t *testing.T, n int, serveCfg serve.Config, clusterCfg cluster.Config) *fleet {
	t.Helper()
	f := &fleet{
		t:    t,
		reg:  obs.New(),
		flts: faults.New(chaosSeed(t)),
	}
	for i := 0; i < n; i++ {
		r := &chaosReplica{name: fmt.Sprintf("r%d", i), cfg: serveCfg}
		r.revive()
		r.ts = httptest.NewServer(r)
		t.Cleanup(r.ts.Close)
		t.Cleanup(r.kill)
		f.replicas = append(f.replicas, r)
		clusterCfg.Replicas = append(clusterCfg.Replicas,
			cluster.ReplicaSpec{Name: r.name, URL: r.ts.URL})
	}
	clusterCfg.Metrics = f.reg
	clusterCfg.Faults = f.flts
	// Bounded tail latency is enforced structurally: every
	// coordinator→replica call and every client→coordinator call runs
	// under a hard transport timeout, so a hang anywhere fails the test.
	clusterCfg.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	coord, err := cluster.New(clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	t.Cleanup(coord.Shutdown)
	f.front = httptest.NewServer(coord.Handler())
	t.Cleanup(f.front.Close)
	f.c = client.New(f.front.URL, client.WithHTTPClient(&http.Client{Timeout: 5 * time.Second}))
	return f
}

// waitReplicaState polls the coordinator's membership until the named
// replica reaches the wanted state.
func (f *fleet) waitReplicaState(name, want string, timeout time.Duration) {
	f.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, rv := range f.coord.Membership() {
			if rv.Name == name && rv.State == want {
				return
			}
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("replica %s never reached state %q; membership: %+v", name, want, f.coord.Membership())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// replicaOf maps a name back to its chaosReplica.
func (f *fleet) replicaOf(name string) *chaosReplica {
	for _, r := range f.replicas {
		if r.name == name {
			return r
		}
	}
	f.t.Fatalf("unknown replica %q", name)
	return nil
}

// fetchResult fetches a done job's result, retrying retryable rejections
// (a replica death between completion and fetch surfaces as a 503 until
// failover re-runs the job elsewhere).
func (f *fleet) fetchResult(ctx context.Context, id string) (*serve.JobResult, error) {
	var last error
	for i := 0; i < 40; i++ {
		res, err := f.c.Result(ctx, id)
		if err == nil {
			return res, nil
		}
		last = err
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || !apiErr.IsRetryable() {
			// not_ready means the job regressed to queued across a failover
			// re-run; wait for it to finish again.
			if apiErr == nil || apiErr.Reason != "not_ready" {
				return nil, err
			}
			if _, werr := f.c.Wait(ctx, id, 10*time.Millisecond); werr != nil {
				return nil, werr
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil, last
}

func serveConfigForChaos() serve.Config {
	return serve.Config{
		Threads:     2,
		MaxInFlight: 1,
		QueueDepth:  64,
		DrainGrace:  50 * time.Millisecond,
	}
}

// TestClusterRoutesAndCompletes is the happy path: a burst of distinct
// circuits spreads across the fleet (every view names its replica) and
// every acknowledged job completes.
func TestClusterRoutesAndCompletes(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	perReplica := map[string]int{}
	var ids []string
	for i := 0; i < 12; i++ {
		resp, err := f.c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 6 + i})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp.Job.Replica == "" {
			t.Fatalf("job %s view has no replica", resp.Job.ID)
		}
		perReplica[resp.Job.Replica]++
		ids = append(ids, resp.Job.ID)
	}
	for _, id := range ids {
		v, err := f.c.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if v.State != serve.StateDone {
			t.Fatalf("job %s finished %s (%s), want done", id, v.State, v.Error)
		}
		if _, err := f.fetchResult(ctx, id); err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
	}
	if len(perReplica) < 2 {
		t.Fatalf("12 distinct circuits all routed to one replica: %v", perReplica)
	}
}

// TestClusterCacheLocality: repeat submissions of the same circuit land
// on the same replica (consistent hashing on the canonical circuit
// hash), so the second one is a result-cache hit there.
func TestClusterCacheLocality(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	req := &serve.SubmitRequest{Circuit: "ghz", N: 8, Shots: 100, Seed: 3}
	first, err := f.c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.c.Wait(ctx, first.Job.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	second, err := f.c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Job.Replica != first.Job.Replica {
		t.Fatalf("repeat submission routed to %s, first went to %s — locality broken",
			second.Job.Replica, first.Job.Replica)
	}
	if second.Job.Cache != serve.CacheHit {
		t.Fatalf("repeat submission cache = %q, want hit", second.Job.Cache)
	}
}

// TestClusterKillReviveMidBurst is the headline chaos scenario: a burst
// of jobs is in flight when one replica is killed for real (queue lost),
// then revived. Every acknowledged job must still reach done and yield a
// result — at-least-once failover via idempotency keys — and the killed
// replica must come back alive in the membership.
func TestClusterKillReviveMidBurst(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// First half of the burst: find a replica that owns work.
	var ids []string
	submit := func(i int) {
		resp, err := f.c.Submit(ctx, &serve.SubmitRequest{Circuit: "qft", N: 6 + i%6, Seed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, resp.Job.ID)
	}
	for i := 0; i < 10; i++ {
		submit(i)
	}
	victim := ""
	for _, id := range ids {
		v, err := f.c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Replica != "" {
			victim = v.Replica
			break
		}
	}
	if victim == "" {
		t.Fatal("no job carries a replica attribution")
	}

	// Kill it mid-burst and keep submitting while it is down.
	f.replicaOf(victim).kill()
	for i := 10; i < 20; i++ {
		submit(i)
	}
	f.waitReplicaState(victim, cluster.ReplicaDead, 10*time.Second)

	// Revive; the prober must walk it back to alive.
	f.replicaOf(victim).revive()
	f.waitReplicaState(victim, cluster.ReplicaAlive, 10*time.Second)

	// Zero lost acknowledged jobs: every id completes and has a result.
	for _, id := range ids {
		v, err := f.c.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if v.State != serve.StateDone {
			t.Fatalf("job %s finished %s (%s / %s), want done", id, v.State, v.Reason, v.Error)
		}
		if _, err := f.fetchResult(ctx, id); err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
	}
	snap := f.reg.Snapshot()
	if snap.Counters["cluster.failover.total"] == 0 {
		t.Error("no failover recorded although a replica died")
	}
	if snap.Counters["cluster.failover.lost"] != 0 {
		t.Errorf("%d jobs lost in failover, want 0", snap.Counters["cluster.failover.lost"])
	}
}

// TestClusterInjectedReplicaDown drives the membership state machine
// through the faults registry instead of a real kill: the per-replica
// cluster.replica.down point makes probes and RPCs fail while armed.
func TestClusterInjectedReplicaDown(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())

	point := faults.ClusterReplicaDown + ".r1"
	f.flts.Arm(point, faults.Trigger{Prob: 1})
	f.waitReplicaState("r1", cluster.ReplicaDead, 10*time.Second)

	f.flts.Disarm(point)
	f.waitReplicaState("r1", cluster.ReplicaAlive, 10*time.Second)

	snap := f.reg.Snapshot()
	if snap.Counters["cluster.replica.revived"] == 0 {
		t.Error("revival not counted")
	}
	if snap.Counters["cluster.probe.failures"] == 0 {
		t.Error("probe failures not counted")
	}
}

// TestClusterBreakerOpensAndRecovers: a fleet-wide injected RPC fault
// opens the per-replica breakers (submits shed fast with a relayed 503
// envelope); once the fault clears, half-open probes close them and
// submissions flow again.
func TestClusterBreakerOpensAndRecovers(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Bare point: every replica RPC fails (probes are unaffected, so the
	// membership stays alive — this is a network brown-out, not a death).
	f.flts.Arm(faults.ClusterRPCTimeout, faults.Trigger{Prob: 1})
	var rejected *client.APIError
	for i := 0; i < 10; i++ {
		_, err := f.c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 6 + i})
		if err == nil {
			t.Fatal("submit succeeded although every replica RPC fails")
		}
		if !errors.As(err, &rejected) {
			t.Fatalf("submit error is not a relayed API error: %v", err)
		}
	}
	if rejected.Code != serve.CodeUnavailable {
		t.Fatalf("relayed rejection code = %s, want %s", rejected.Code, serve.CodeUnavailable)
	}
	snap := f.reg.Snapshot()
	if snap.Counters["cluster.breaker.opens"] == 0 {
		t.Error("no breaker opened under a persistent RPC fault")
	}
	if snap.Counters["cluster.rpc.retries"] == 0 {
		t.Error("no retries recorded before the breakers opened")
	}

	f.flts.Disarm(faults.ClusterRPCTimeout)
	time.Sleep(150 * time.Millisecond) // past the breaker cooldown
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := f.c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 9})
		if err == nil {
			if _, err := f.c.Wait(ctx, resp.Job.ID, 10*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered after fault cleared: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClusterSlowRPCJitter: injected stragglers delay RPCs but bounded
// timeouts keep the cluster live — jobs still complete.
func TestClusterSlowRPCJitter(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	f.flts.Arm(faults.ClusterRPCSlow, faults.Trigger{Prob: 0.3, Delay: 30 * time.Millisecond})
	for i := 0; i < 8; i++ {
		resp, err := f.c.Submit(ctx, &serve.SubmitRequest{Circuit: "bv", N: 8 + i%4})
		if err != nil {
			t.Fatalf("submit under jitter: %v", err)
		}
		v, err := f.c.Wait(ctx, resp.Job.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != serve.StateDone {
			t.Fatalf("job %s finished %s, want done", v.ID, v.State)
		}
	}
}

// TestCoordinatorIdempotency: the coordinator replays its own
// idempotency keys without re-routing.
func TestCoordinatorIdempotency(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	req := &serve.SubmitRequest{Circuit: "ghz", N: 10}
	first, err := f.c.Submit(ctx, req, client.WithIdempotencyKey("chaos-key-1"))
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed {
		t.Fatal("first submission flagged as replayed")
	}
	second, err := f.c.Submit(ctx, req, client.WithIdempotencyKey("chaos-key-1"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Replayed {
		t.Fatal("second submission with the same key was not replayed")
	}
	if second.Job.ID != first.Job.ID {
		t.Fatalf("replay returned job %s, want %s", second.Job.ID, first.Job.ID)
	}
}

// TestCoordinatorServesTerminalViewsDuringOutage: a job that completed
// (and whose result crossed the coordinator once) stays fully readable
// after its replica dies — terminal views and cached results never
// disappear with a replica.
func TestCoordinatorServesTerminalViewsDuringOutage(t *testing.T) {
	f := newFleet(t, 3, serveConfigForChaos(), chaosClusterConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	resp, err := f.c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 8, Shots: 50})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Job.ID
	done, err := f.c.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := f.fetchResult(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	f.replicaOf(done.Replica).kill()
	f.waitReplicaState(done.Replica, cluster.ReplicaDead, 10*time.Second)

	v, err := f.c.Job(ctx, id)
	if err != nil {
		t.Fatalf("status of a terminal job during outage: %v", err)
	}
	if v.State != serve.StateDone {
		t.Fatalf("terminal state regressed to %s during outage", v.State)
	}
	res2, err := f.c.Result(ctx, id)
	if err != nil {
		t.Fatalf("cached result unavailable during outage: %v", err)
	}
	if res1.Stats.Gates != res2.Stats.Gates || len(res1.Top) != len(res2.Top) {
		t.Fatal("cached result differs from the original fetch")
	}

	// The merged tenants view must also survive one dead replica.
	if _, err := f.c.Tenants(ctx); err != nil {
		t.Fatalf("tenants view during outage: %v", err)
	}
}
