package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := newBreaker(3, time.Minute)
	now := time.Now()
	for i := 0; i < 2; i++ {
		if opened := b.Failure(now); opened {
			t.Fatalf("breaker opened after %d failures (threshold 3)", i+1)
		}
		if !b.Allow(now) {
			t.Fatalf("closed breaker denied a call after %d failures", i+1)
		}
	}
	if opened := b.Failure(now); !opened {
		t.Fatal("third failure did not open the breaker")
	}
	if b.Allow(now) {
		t.Fatal("open breaker admitted a call before the cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(3, time.Minute)
	now := time.Now()
	b.Failure(now)
	b.Failure(now)
	b.Success()
	// The consecutive count restarted: two more failures must not open.
	b.Failure(now)
	if opened := b.Failure(now); opened {
		t.Fatal("breaker opened although a success reset the streak")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	now := time.Now()
	b.Failure(now) // opens
	if b.Allow(now) {
		t.Fatal("open breaker admitted a call immediately")
	}
	after := now.Add(20 * time.Millisecond)
	if !b.Allow(after) {
		t.Fatal("cooldown elapsed but probe was denied")
	}
	// Exactly one probe: a second caller is shed while it is in flight.
	if b.Allow(after) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if st, _ := b.State(); st != breakerClosed {
		t.Fatalf("successful probe left breaker %v, want closed", st)
	}
	if !b.Allow(after) {
		t.Fatal("closed breaker denied a call after recovery")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	now := time.Now()
	b.Failure(now)
	after := now.Add(20 * time.Millisecond)
	if !b.Allow(after) {
		t.Fatal("probe denied after cooldown")
	}
	if opened := b.Failure(after); !opened {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Allow(after.Add(5 * time.Millisecond)) {
		t.Fatal("re-opened breaker admitted a call inside the fresh cooldown")
	}
	if _, opens := b.State(); opens != 2 {
		t.Fatalf("open count = %d, want 2", opens)
	}
}
