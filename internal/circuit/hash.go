package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Hash returns the canonical content hash of the circuit: a SHA-256 (hex)
// over the register size and the semantic content of every gate in order —
// targets, controls with polarity, and the unitary entries as raw float64
// bits. The display name of the circuit and the spelling of each gate are
// deliberately excluded: a gate is identified by what it does to the state,
// not what a front end called it, so the same circuit built by a workloads
// generator and parsed from OpenQASM hashes identically, and two QASM
// sources that differ only in whitespace or comments collide by
// construction. The hash is the key of the serve layer's result cache and
// idempotency machinery (DESIGN.md §13).
func (c *Circuit) Hash() string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { wu(math.Float64bits(f)) }
	wu(uint64(c.Qubits))
	wu(uint64(len(c.Gates)))
	for i := range c.Gates {
		g := &c.Gates[i]
		wu(uint64(len(g.Targets)))
		for _, t := range g.Targets {
			wu(uint64(t))
		}
		wu(uint64(len(g.Controls)))
		for _, ctl := range g.Controls {
			wu(uint64(ctl.Qubit))
			if ctl.Negative {
				wu(1)
			} else {
				wu(0)
			}
		}
		// The unitary fully determines the operation (params are already
		// baked into it); hash the exact bits so no tolerance is involved.
		for _, row := range g.U {
			for _, e := range row {
				wf(real(e))
				wf(imag(e))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
