package circuit

import (
	"fmt"
	"strings"
)

// Circuit is an ordered list of gates over a register of qubits.
type Circuit struct {
	Name   string
	Qubits int
	Gates  []Gate
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	if n < 0 {
		panic(fmt.Sprintf("circuit: negative qubit count %d", n))
	}
	return &Circuit{Name: name, Qubits: n}
}

// Append adds gates to the circuit, panicking on structurally invalid
// gates; generators build circuits programmatically and an invalid gate is
// a programming error there. Front ends that consume untrusted input (the
// QASM parser) validate before appending.
func (c *Circuit) Append(gates ...Gate) *Circuit {
	for _, g := range gates {
		if err := g.Validate(c.Qubits); err != nil {
			panic(err)
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// GateCount returns the number of gates.
func (c *Circuit) GateCount() int { return len(c.Gates) }

// Depth returns the circuit depth: the length of the longest chain of
// gates that share qubits (each gate occupies one layer on each qubit it
// touches).
func (c *Circuit) Depth() int {
	busy := make([]int, c.Qubits)
	depth := 0
	for i := range c.Gates {
		layer := 0
		for _, q := range c.Gates[i].Qubits() {
			if busy[q] > layer {
				layer = busy[q]
			}
		}
		layer++
		for _, q := range c.Gates[i].Qubits() {
			busy[q] = layer
		}
		if layer > depth {
			depth = layer
		}
	}
	return depth
}

// TwoQubitGateCount returns the number of gates touching 2+ qubits.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for i := range c.Gates {
		if len(c.Gates[i].Qubits()) >= 2 {
			n++
		}
	}
	return n
}

// Validate re-checks every gate against the register size.
func (c *Circuit) Validate() error {
	for i := range c.Gates {
		if err := c.Gates[i].Validate(c.Qubits); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// String renders a short human-readable summary plus the gate list.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q: %d qubits, %d gates, depth %d\n", c.Name, c.Qubits, c.GateCount(), c.Depth())
	for i := range c.Gates {
		g := &c.Gates[i]
		fmt.Fprintf(&b, "  %4d: %-5s targets=%v", i, g.Name, g.Targets)
		if len(g.Controls) > 0 {
			fmt.Fprintf(&b, " controls=%v", g.Controls)
		}
		if len(g.Params) > 0 {
			fmt.Fprintf(&b, " params=%v", g.Params)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
