// Package circuit defines the quantum-circuit intermediate representation
// shared by every engine in this repository: a gate list over a register of
// qubits, a library of standard-gate constructors, and validation. Circuits
// are produced by the generators in internal/workloads or parsed from
// OpenQASM 2.0 by internal/qasm, and consumed by the array engine
// (internal/statevec), the DD engine (internal/ddsim) and the hybrid FlatDD
// engine (internal/core).
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Control describes a control qubit. Negative controls trigger on |0>.
type Control struct {
	Qubit    int
	Negative bool
}

// Gate is one operation of a circuit. Two canonical shapes exist:
//
//   - a single-qubit unitary (len(Targets)==1, U is 2x2) with any number of
//     controls, covering X, CX, CCX, CRZ, ...;
//   - an uncontrolled multi-qubit unitary (len(Targets)==k, U is 2^k x 2^k),
//     covering SWAP, iSWAP, fSim, and fused blocks.
//
// Row/column bit l of U corresponds to Targets[l] (Targets[0] is the least
// significant bit).
type Gate struct {
	Name     string
	Targets  []int
	Controls []Control
	Params   []float64
	U        [][]complex128
}

// Qubits returns every qubit the gate touches (targets then controls).
func (g *Gate) Qubits() []int {
	qs := make([]int, 0, len(g.Targets)+len(g.Controls))
	qs = append(qs, g.Targets...)
	for _, c := range g.Controls {
		qs = append(qs, c.Qubit)
	}
	return qs
}

// Dim returns the dimension of the gate unitary, 2^len(Targets).
func (g *Gate) Dim() int { return 1 << uint(len(g.Targets)) }

// Validate checks the structural invariants of the gate for an n-qubit
// register.
func (g *Gate) Validate(n int) error {
	if len(g.Targets) == 0 {
		return fmt.Errorf("circuit: gate %q has no targets", g.Name)
	}
	if len(g.Targets) > 1 && len(g.Controls) > 0 {
		return fmt.Errorf("circuit: gate %q mixes multiple targets with controls", g.Name)
	}
	if len(g.U) != g.Dim() {
		return fmt.Errorf("circuit: gate %q has %d rows, want %d", g.Name, len(g.U), g.Dim())
	}
	for _, row := range g.U {
		if len(row) != g.Dim() {
			return fmt.Errorf("circuit: gate %q is not square", g.Name)
		}
	}
	seen := make(map[int]bool)
	for _, q := range g.Qubits() {
		if q < 0 || q >= n {
			return fmt.Errorf("circuit: gate %q qubit %d out of range [0,%d)", g.Name, q, n)
		}
		if seen[q] {
			return fmt.Errorf("circuit: gate %q uses qubit %d twice", g.Name, q)
		}
		seen[q] = true
	}
	return nil
}

// IsUnitary reports whether U†U = I within tol. Used by tests and the QASM
// front end to reject malformed custom gates.
func (g *Gate) IsUnitary(tol float64) bool {
	d := g.Dim()
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var s complex128
			for k := 0; k < d; k++ {
				s += cmplx.Conj(g.U[k][i]) * g.U[k][j]
			}
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(s-want) > tol {
				return false
			}
		}
	}
	return true
}

func m2(a, b, c, d complex128) [][]complex128 {
	return [][]complex128{{a, b}, {c, d}}
}

func single(name string, q int, u [][]complex128, params ...float64) Gate {
	return Gate{Name: name, Targets: []int{q}, U: u, Params: params}
}

func controlled(name string, ctrls []int, q int, u [][]complex128, params ...float64) Gate {
	cs := make([]Control, len(ctrls))
	for i, c := range ctrls {
		cs[i] = Control{Qubit: c}
	}
	return Gate{Name: name, Targets: []int{q}, Controls: cs, U: u, Params: params}
}

// invSqrt2 is 1/sqrt(2).
var invSqrt2 = complex(1/math.Sqrt2, 0)

// Standard single-qubit gates.

// I returns the identity gate on qubit q (useful in tests and fusion).
func I(q int) Gate { return single("id", q, m2(1, 0, 0, 1)) }

// H returns the Hadamard gate.
func H(q int) Gate { return single("h", q, m2(invSqrt2, invSqrt2, invSqrt2, -invSqrt2)) }

// X returns the Pauli-X gate.
func X(q int) Gate { return single("x", q, m2(0, 1, 1, 0)) }

// Y returns the Pauli-Y gate.
func Y(q int) Gate { return single("y", q, m2(0, -1i, 1i, 0)) }

// Z returns the Pauli-Z gate.
func Z(q int) Gate { return single("z", q, m2(1, 0, 0, -1)) }

// S returns the phase gate S = sqrt(Z).
func S(q int) Gate { return single("s", q, m2(1, 0, 0, 1i)) }

// Sdg returns S†.
func Sdg(q int) Gate { return single("sdg", q, m2(1, 0, 0, -1i)) }

// T returns the T gate.
func T(q int) Gate { return single("t", q, m2(1, 0, 0, cmplx.Exp(1i*math.Pi/4))) }

// Tdg returns T†.
func Tdg(q int) Gate { return single("tdg", q, m2(1, 0, 0, cmplx.Exp(-1i*math.Pi/4))) }

// SX returns sqrt(X).
func SX(q int) Gate {
	return single("sx", q, m2(0.5+0.5i, 0.5-0.5i, 0.5-0.5i, 0.5+0.5i))
}

// SXdg returns sqrt(X)†.
func SXdg(q int) Gate {
	return single("sxdg", q, m2(0.5-0.5i, 0.5+0.5i, 0.5+0.5i, 0.5-0.5i))
}

// SY returns sqrt(Y), one of the supremacy-circuit single-qubit gates.
func SY(q int) Gate {
	return single("sy", q, m2(0.5+0.5i, -0.5-0.5i, 0.5+0.5i, 0.5+0.5i))
}

// SW returns sqrt(W) with W=(X+Y)/sqrt(2), the third supremacy-circuit
// single-qubit gate from the Google quantum-supremacy experiment.
func SW(q int) Gate {
	return single("sw", q, m2(0.5+0.5i, complex(0, -1)*invSqrt2, invSqrt2, 0.5+0.5i))
}

// RX returns the x-rotation by theta.
func RX(theta float64, q int) Gate {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return single("rx", q, m2(c, s, s, c), theta)
}

// RY returns the y-rotation by theta.
func RY(theta float64, q int) Gate {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return single("ry", q, m2(c, -s, s, c), theta)
}

// RZ returns the z-rotation by theta.
func RZ(theta float64, q int) Gate {
	return single("rz", q, m2(cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2))), theta)
}

// P returns the phase gate diag(1, e^{i phi}) (OpenQASM u1).
func P(phi float64, q int) Gate {
	return single("p", q, m2(1, 0, 0, cmplx.Exp(complex(0, phi))), phi)
}

// U2 returns the OpenQASM u2(phi, lambda) gate.
func U2(phi, lambda float64, q int) Gate {
	return single("u2", q, m2(
		invSqrt2, -cmplx.Exp(complex(0, lambda))*invSqrt2,
		cmplx.Exp(complex(0, phi))*invSqrt2, cmplx.Exp(complex(0, phi+lambda))*invSqrt2,
	), phi, lambda)
}

// U3 returns the generic single-qubit gate u3(theta, phi, lambda).
func U3(theta, phi, lambda float64, q int) Gate {
	ct := complex(math.Cos(theta/2), 0)
	st := complex(math.Sin(theta/2), 0)
	return single("u3", q, m2(
		ct, -cmplx.Exp(complex(0, lambda))*st,
		cmplx.Exp(complex(0, phi))*st, cmplx.Exp(complex(0, phi+lambda))*ct,
	), theta, phi, lambda)
}

// Controlled gates.

// CX returns the controlled-X gate with control c and target t.
func CX(c, t int) Gate { return controlled("cx", []int{c}, t, m2(0, 1, 1, 0)) }

// CY returns the controlled-Y gate.
func CY(c, t int) Gate { return controlled("cy", []int{c}, t, m2(0, -1i, 1i, 0)) }

// CZ returns the controlled-Z gate.
func CZ(c, t int) Gate { return controlled("cz", []int{c}, t, m2(1, 0, 0, -1)) }

// CH returns the controlled-Hadamard gate.
func CH(c, t int) Gate {
	return controlled("ch", []int{c}, t, m2(invSqrt2, invSqrt2, invSqrt2, -invSqrt2))
}

// CP returns the controlled phase gate (OpenQASM cu1/cp).
func CP(phi float64, c, t int) Gate {
	return controlled("cp", []int{c}, t, m2(1, 0, 0, cmplx.Exp(complex(0, phi))), phi)
}

// CRX returns the controlled x-rotation.
func CRX(theta float64, c, t int) Gate {
	g := RX(theta, t)
	return controlled("crx", []int{c}, t, g.U, theta)
}

// CRY returns the controlled y-rotation.
func CRY(theta float64, c, t int) Gate {
	g := RY(theta, t)
	return controlled("cry", []int{c}, t, g.U, theta)
}

// CRZ returns the controlled z-rotation.
func CRZ(theta float64, c, t int) Gate {
	g := RZ(theta, t)
	return controlled("crz", []int{c}, t, g.U, theta)
}

// CU3 returns the controlled u3 gate.
func CU3(theta, phi, lambda float64, c, t int) Gate {
	g := U3(theta, phi, lambda, t)
	return controlled("cu3", []int{c}, t, g.U, theta, phi, lambda)
}

// CCX returns the Toffoli gate with controls c1, c2 and target t.
func CCX(c1, c2, t int) Gate { return controlled("ccx", []int{c1, c2}, t, m2(0, 1, 1, 0)) }

// CCZ returns the doubly-controlled Z gate.
func CCZ(c1, c2, t int) Gate { return controlled("ccz", []int{c1, c2}, t, m2(1, 0, 0, -1)) }

// MCX returns an X gate with an arbitrary number of controls.
func MCX(controls []int, t int) Gate { return controlled("mcx", controls, t, m2(0, 1, 1, 0)) }

// Two-qubit (non-controlled-form) gates.

// SWAP returns the swap gate on qubits a and b.
func SWAP(a, b int) Gate {
	return Gate{Name: "swap", Targets: []int{a, b}, U: [][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	}}
}

// ISwap returns the iSWAP gate on qubits a and b.
func ISwap(a, b int) Gate {
	return Gate{Name: "iswap", Targets: []int{a, b}, U: [][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1i, 0},
		{0, 1i, 0, 0},
		{0, 0, 0, 1},
	}}
}

// FSim returns the fermionic-simulation gate fSim(theta, phi) used by the
// Google quantum-supremacy circuits.
func FSim(theta, phi float64, a, b int) Gate {
	c := complex(math.Cos(theta), 0)
	s := complex(0, -math.Sin(theta))
	return Gate{Name: "fsim", Targets: []int{a, b}, Params: []float64{theta, phi}, U: [][]complex128{
		{1, 0, 0, 0},
		{0, c, s, 0},
		{0, s, c, 0},
		{0, 0, 0, cmplx.Exp(complex(0, -phi))},
	}}
}

// RZZ returns the two-qubit ZZ-rotation exp(-i theta/2 Z⊗Z).
func RZZ(theta float64, a, b int) Gate {
	p := cmplx.Exp(complex(0, -theta/2))
	q := cmplx.Exp(complex(0, theta/2))
	return Gate{Name: "rzz", Targets: []int{a, b}, Params: []float64{theta}, U: [][]complex128{
		{p, 0, 0, 0},
		{0, q, 0, 0},
		{0, 0, q, 0},
		{0, 0, 0, p},
	}}
}

// CSwap returns the Fredkin (controlled-swap) gate decomposed into three
// gates: CX(b,a), CCX(c,a,b), CX(b,a).
func CSwap(c, a, b int) []Gate {
	return []Gate{CX(b, a), CCX(c, a, b), CX(b, a)}
}
