package circuit

import (
	"math"
	"testing"
)

func bellPair() *Circuit {
	return New("bell", 2).Append(H(0), CX(0, 1))
}

func TestHashDeterministic(t *testing.T) {
	a, b := bellPair(), bellPair()
	if a.Hash() != b.Hash() {
		t.Fatal("identical circuits hash differently")
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
}

func TestHashIgnoresDisplayName(t *testing.T) {
	a, b := bellPair(), bellPair()
	b.Name = "renamed"
	if a.Hash() != b.Hash() {
		t.Fatal("circuit display name leaked into the canonical hash")
	}
}

func TestHashIgnoresGateSpelling(t *testing.T) {
	// p(θ) and the qasm legacy spelling u1(θ) build the same unitary; the
	// canonical hash must not see the name.
	a := New("a", 1).Append(P(0.25, 0))
	g := P(0.25, 0)
	g.Name = "u1"
	b := New("b", 1).Append(g)
	if a.Hash() != b.Hash() {
		t.Fatal("gate spelling leaked into the canonical hash")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := bellPair().Hash()
	cases := map[string]*Circuit{
		"different register":  New("bell", 3).Append(H(0), CX(0, 1)),
		"different target":    New("bell", 2).Append(H(1), CX(0, 1)),
		"different control":   New("bell", 2).Append(H(0), CX(1, 0)),
		"different gate":      New("bell", 2).Append(H(0), CZ(0, 1)),
		"extra gate":          bellPair().Append(X(0)),
		"reordered gates":     New("bell", 2).Append(CX(0, 1), H(0)),
		"perturbed parameter": New("bell", 2).Append(RZ(1e-12, 0), CX(0, 1)),
	}
	for name, c := range cases {
		if c.Hash() == base {
			t.Errorf("%s: hash collision with the base circuit", name)
		}
	}
}

func TestHashControlPolarity(t *testing.T) {
	pos := New("c", 2)
	pos.Gates = append(pos.Gates, Gate{Name: "cx", Targets: []int{1},
		Controls: []Control{{Qubit: 0}}, U: X(1).U})
	neg := New("c", 2)
	neg.Gates = append(neg.Gates, Gate{Name: "cx", Targets: []int{1},
		Controls: []Control{{Qubit: 0, Negative: true}}, U: X(1).U})
	if pos.Hash() == neg.Hash() {
		t.Fatal("control polarity not part of the canonical hash")
	}
}

func TestHashExactFloatBits(t *testing.T) {
	// Adjacent float64s must produce distinct hashes: the hash is exact,
	// tolerance lives in the engines.
	theta := 0.7
	a := New("r", 1).Append(RZ(theta, 0))
	b := New("r", 1).Append(RZ(math.Nextafter(theta, 1), 0))
	if a.Hash() == b.Hash() {
		t.Fatal("adjacent rotation angles collide")
	}
}
