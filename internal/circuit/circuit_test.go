package circuit

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestAllStandardGatesUnitary(t *testing.T) {
	gates := []Gate{
		I(0), H(0), X(0), Y(0), Z(0), S(0), Sdg(0), T(0), Tdg(0),
		SX(0), SXdg(0), SY(0), SW(0),
		RX(0.7, 0), RY(1.3, 0), RZ(-2.1, 0), P(0.5, 0),
		U2(0.3, 0.9, 0), U3(1.1, 0.2, -0.4, 0),
		CX(0, 1), CY(0, 1), CZ(0, 1), CH(0, 1), CP(0.8, 0, 1),
		CRX(0.6, 0, 1), CRY(0.6, 0, 1), CRZ(0.6, 0, 1), CU3(0.1, 0.2, 0.3, 0, 1),
		CCX(0, 1, 2), CCZ(0, 1, 2), MCX([]int{0, 1, 2}, 3),
		SWAP(0, 1), ISwap(0, 1), FSim(0.4, 0.9, 0, 1), RZZ(0.7, 0, 1),
	}
	for _, g := range gates {
		if !g.IsUnitary(1e-12) {
			t.Errorf("gate %s is not unitary", g.Name)
		}
	}
}

func TestGateInverses(t *testing.T) {
	pairs := [][2]Gate{
		{S(0), Sdg(0)},
		{T(0), Tdg(0)},
		{SX(0), SXdg(0)},
	}
	for _, p := range pairs {
		a, b := p[0], p[1]
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				var s complex128
				for k := 0; k < 2; k++ {
					s += a.U[i][k] * b.U[k][j]
				}
				want := complex128(0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(s-want) > 1e-12 {
					t.Errorf("%s*%s not identity at (%d,%d): %v", a.Name, b.Name, i, j, s)
				}
			}
		}
	}
}

func TestSquareRootGatesSquareToParent(t *testing.T) {
	cases := []struct {
		half   Gate
		parent Gate
	}{
		{SX(0), X(0)},
		{SY(0), Y(0)},
		{S(0), Z(0)},
	}
	for _, tc := range cases {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				var s complex128
				for k := 0; k < 2; k++ {
					s += tc.half.U[i][k] * tc.half.U[k][j]
				}
				if cmplx.Abs(s-tc.parent.U[i][j]) > 1e-12 {
					t.Errorf("%s^2 != %s at (%d,%d): %v vs %v",
						tc.half.Name, tc.parent.Name, i, j, s, tc.parent.U[i][j])
				}
			}
		}
	}
}

func TestSWSquaresToW(t *testing.T) {
	w := [][]complex128{
		{0, complex(1/math.Sqrt2, -1/math.Sqrt2)},
		{complex(1/math.Sqrt2, 1/math.Sqrt2), 0},
	}
	g := SW(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var s complex128
			for k := 0; k < 2; k++ {
				s += g.U[i][k] * g.U[k][j]
			}
			if cmplx.Abs(s-w[i][j]) > 1e-12 {
				t.Errorf("SW^2 != W at (%d,%d): %v vs %v", i, j, s, w[i][j])
			}
		}
	}
}

func TestRotationPeriodicity(t *testing.T) {
	f := func(theta float64) bool {
		theta = math.Mod(theta, 4*math.Pi)
		if math.IsNaN(theta) {
			return true
		}
		// RZ(a)·RZ(-a) = I
		a := RZ(theta, 0)
		b := RZ(-theta, 0)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				var s complex128
				for k := 0; k < 2; k++ {
					s += a.U[i][k] * b.U[k][j]
				}
				want := complex128(0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(s-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGateValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Gate
		ok   bool
	}{
		{"valid h", H(0), true},
		{"target out of range", H(5), false},
		{"negative target", H(-1), false},
		{"control==target", Gate{Name: "bad", Targets: []int{0}, Controls: []Control{{Qubit: 0}}, U: m2(0, 1, 1, 0)}, false},
		{"no targets", Gate{Name: "empty", U: [][]complex128{{1}}}, false},
		{"wrong dims", Gate{Name: "dims", Targets: []int{0}, U: [][]complex128{{1}}}, false},
		{"multi-target with controls", Gate{Name: "mixed", Targets: []int{0, 1}, Controls: []Control{{Qubit: 2}},
			U: SWAP(0, 1).U}, false},
		{"valid ccx", CCX(0, 1, 2), true},
	}
	for _, tc := range cases {
		err := tc.g.Validate(3)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCircuitAppendAndCounts(t *testing.T) {
	c := New("test", 3)
	c.Append(H(0), CX(0, 1), CX(1, 2), T(2))
	if c.GateCount() != 4 {
		t.Fatalf("gate count %d, want 4", c.GateCount())
	}
	if c.TwoQubitGateCount() != 2 {
		t.Fatalf("two-qubit count %d, want 2", c.TwoQubitGateCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitDepth(t *testing.T) {
	c := New("depth", 4)
	// Layer 1: H(0), H(2); layer 2: CX(0,1), CX(2,3); layer 3: CX(1,2).
	c.Append(H(0), H(2), CX(0, 1), CX(2, 3), CX(1, 2))
	if d := c.Depth(); d != 3 {
		t.Fatalf("depth %d, want 3", d)
	}
	if d := New("empty", 2).Depth(); d != 0 {
		t.Fatalf("empty depth %d, want 0", d)
	}
}

func TestAppendPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append accepted an out-of-range gate")
		}
	}()
	New("bad", 2).Append(H(7))
}

func TestCSwapDecomposition(t *testing.T) {
	gs := CSwap(2, 0, 1)
	if len(gs) != 3 {
		t.Fatalf("CSwap yields %d gates, want 3", len(gs))
	}
	c := New("fredkin", 3)
	c.Append(gs...)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitString(t *testing.T) {
	c := New("str", 2)
	c.Append(H(0), CRZ(0.5, 0, 1))
	s := c.String()
	for _, want := range []string{"str", "2 qubits", "crz", "controls"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestGateQubitsOrder(t *testing.T) {
	g := CCX(3, 1, 0)
	qs := g.Qubits()
	if len(qs) != 3 || qs[0] != 0 || qs[1] != 3 || qs[2] != 1 {
		t.Fatalf("Qubits() = %v, want targets then controls", qs)
	}
	if g.Dim() != 2 {
		t.Fatalf("Dim = %d", g.Dim())
	}
	sw := SWAP(2, 5)
	if sw.Dim() != 4 {
		t.Fatalf("SWAP dim = %d", sw.Dim())
	}
}

func TestIsUnitaryRejectsNonUnitary(t *testing.T) {
	g := Gate{Name: "bad", Targets: []int{0}, U: [][]complex128{{1, 0}, {0, 2}}}
	if g.IsUnitary(1e-9) {
		t.Fatal("diag(1,2) accepted as unitary")
	}
}
