// Package observable computes expectation values of Pauli-string
// observables on the states produced by any of the repository's engines:
// flat amplitude arrays (statevec / FlatDD after conversion), vector DDs
// (ddsim / FlatDD in the DD phase), and density-matrix DDs (noise).
//
// An observable is a weighted sum of Pauli strings such as
// "ZZII" or "+0.5 XX - 1.5 ZI". Expectation values are computed exactly:
//
//	<psi| P |psi>        for pure states,
//	tr(P rho)            for mixed states.
package observable

import (
	"fmt"
	"math/cmplx"
	"strconv"
	"strings"

	"flatdd/internal/dd"
)

// Pauli is one single-qubit Pauli operator.
type Pauli byte

// The Pauli alphabet.
const (
	I Pauli = 'I'
	X Pauli = 'X'
	Y Pauli = 'Y'
	Z Pauli = 'Z'
)

// Term is a weighted Pauli string. Ops[k] acts on qubit k (Ops[0] is the
// least significant qubit), so the string "XZ" means X on qubit 0 and Z on
// qubit 1.
type Term struct {
	Coefficient float64
	Ops         []Pauli
}

// Observable is a real linear combination of Pauli strings over a fixed
// register width.
type Observable struct {
	Qubits int
	Terms  []Term
}

// New returns an empty observable over n qubits.
func New(n int) *Observable {
	if n < 1 {
		panic(fmt.Sprintf("observable: bad qubit count %d", n))
	}
	return &Observable{Qubits: n}
}

// Add appends a weighted Pauli string given as a letter sequence with
// Ops[0] = qubit 0, e.g. Add(0.5, "XZI"). It returns the observable for
// chaining.
func (o *Observable) Add(coeff float64, ops string) *Observable {
	if len(ops) != o.Qubits {
		panic(fmt.Sprintf("observable: term %q has %d ops, want %d", ops, len(ops), o.Qubits))
	}
	t := Term{Coefficient: coeff, Ops: make([]Pauli, len(ops))}
	for i := 0; i < len(ops); i++ {
		switch p := Pauli(ops[i]); p {
		case I, X, Y, Z:
			t.Ops[i] = p
		default:
			panic(fmt.Sprintf("observable: bad Pauli %q in %q", ops[i], ops))
		}
	}
	o.Terms = append(o.Terms, t)
	return o
}

// Parse builds an observable from a human-readable sum such as
// "ZZ + 0.5 XX - 1.5 IZ" over n qubits.
func Parse(n int, s string) (*Observable, error) {
	o := New(n)
	s = strings.TrimSpace(s)
	if s == "" {
		return o, nil
	}
	// Tokenize into signed terms.
	s = strings.ReplaceAll(s, "-", "+-")
	for _, chunk := range strings.Split(s, "+") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		sign := 1.0
		if strings.HasPrefix(chunk, "-") {
			sign = -1
			chunk = strings.TrimSpace(chunk[1:])
		}
		fields := strings.Fields(chunk)
		coeff := 1.0
		ops := ""
		switch len(fields) {
		case 1:
			ops = fields[0]
		case 2:
			c, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("observable: bad coefficient %q", fields[0])
			}
			coeff = c
			ops = fields[1]
		default:
			return nil, fmt.Errorf("observable: cannot parse term %q", chunk)
		}
		if len(ops) != n {
			return nil, fmt.Errorf("observable: term %q has %d ops, want %d", ops, len(ops), n)
		}
		for _, r := range ops {
			switch Pauli(r) {
			case I, X, Y, Z:
			default:
				return nil, fmt.Errorf("observable: bad Pauli %q in %q", r, ops)
			}
		}
		o.Add(sign*coeff, ops)
	}
	return o, nil
}

// pauliMat returns the 2x2 matrix of a Pauli.
func pauliMat(p Pauli) [2][2]complex128 {
	switch p {
	case X:
		return [2][2]complex128{{0, 1}, {1, 0}}
	case Y:
		return [2][2]complex128{{0, -1i}, {1i, 0}}
	case Z:
		return [2][2]complex128{{1, 0}, {0, -1}}
	default:
		return [2][2]complex128{{1, 0}, {0, 1}}
	}
}

// ExpectationArray computes <psi|O|psi> for a flat amplitude array. Each
// term is evaluated by streaming over the amplitudes once: a Pauli string
// maps basis state i to a single partner j with a +-1/i phase, so no
// operator matrix is ever materialized.
func (o *Observable) ExpectationArray(amps []complex128) float64 {
	if len(amps) != 1<<uint(o.Qubits) {
		panic(fmt.Sprintf("observable: state length %d, want %d", len(amps), 1<<uint(o.Qubits)))
	}
	total := 0.0
	for _, t := range o.Terms {
		var flipMask uint64
		for q, p := range t.Ops {
			if p == X || p == Y {
				flipMask |= 1 << uint(q)
			}
		}
		var sum complex128
		for i, a := range amps {
			if a == 0 {
				continue
			}
			j := uint64(i) ^ flipMask
			// phase = prod over qubits of the (j_q, i_q) entry of P_q.
			phase := complex128(1)
			for q, p := range t.Ops {
				bi := uint64(i) >> uint(q) & 1
				bj := j >> uint(q) & 1
				m := pauliMat(p)
				phase *= m[bj][bi]
			}
			sum += cmplx.Conj(amps[j]) * phase * a
		}
		total += t.Coefficient * real(sum)
	}
	return total
}

// ExpectationDD computes <psi|O|psi> for a vector DD by building each
// Pauli string as a (Kronecker-chain) matrix DD and contracting
// <psi|P|psi> with the kernel's inner product.
func (o *Observable) ExpectationDD(m *dd.Manager, state dd.VEdge) float64 {
	total := 0.0
	for _, t := range o.Terms {
		P := o.termDD(m, t)
		total += t.Coefficient * real(m.InnerProduct(state, m.MulMV(P, state), o.Qubits))
	}
	return total
}

// ExpectationRho computes tr(O·rho) for a density-matrix DD.
func (o *Observable) ExpectationRho(m *dd.Manager, rho dd.MEdge) float64 {
	total := 0.0
	for _, t := range o.Terms {
		P := o.termDD(m, t)
		total += t.Coefficient * real(m.Trace(m.MulMM(P, rho), o.Qubits))
	}
	return total
}

func (o *Observable) termDD(m *dd.Manager, t Term) dd.MEdge {
	blocks := make([]dd.Matrix2, o.Qubits)
	for q, p := range t.Ops {
		pm := pauliMat(p)
		blocks[q] = dd.Matrix2{{pm[0][0], pm[0][1]}, {pm[1][0], pm[1][1]}}
	}
	return m.KronChain(blocks)
}

// String renders the observable.
func (o *Observable) String() string {
	if len(o.Terms) == 0 {
		return "0"
	}
	parts := make([]string, len(o.Terms))
	for i, t := range o.Terms {
		ops := make([]byte, len(t.Ops))
		for q, p := range t.Ops {
			ops[q] = byte(p)
		}
		parts[i] = fmt.Sprintf("%+g %s", t.Coefficient, ops)
	}
	return strings.Join(parts, " ")
}
