package observable

import (
	"math"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/ddsim"
	"flatdd/internal/noise"
	"flatdd/internal/statevec"
)

const eps = 1e-9

func TestSingleQubitExpectations(t *testing.T) {
	// |0>: <Z>=1, <X>=0; |+>: <X>=1, <Z>=0; |1>: <Z>=-1.
	zero := []complex128{1, 0}
	plus := []complex128{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)}
	one := []complex128{0, 1}

	z := New(1).Add(1, "Z")
	x := New(1).Add(1, "X")
	y := New(1).Add(1, "Y")

	cases := []struct {
		name  string
		o     *Observable
		state []complex128
		want  float64
	}{
		{"<0|Z|0>", z, zero, 1},
		{"<0|X|0>", x, zero, 0},
		{"<+|X|+>", x, plus, 1},
		{"<+|Z|+>", z, plus, 0},
		{"<1|Z|1>", z, one, -1},
		{"<+|Y|+>", y, plus, 0},
	}
	for _, tc := range cases {
		if got := tc.o.ExpectationArray(tc.state); math.Abs(got-tc.want) > eps {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
	// |i> = (|0> + i|1>)/sqrt2 has <Y> = 1.
	iState := []complex128{complex(1/math.Sqrt2, 0), complex(0, 1/math.Sqrt2)}
	if got := y.ExpectationArray(iState); math.Abs(got-1) > eps {
		t.Errorf("<i|Y|i> = %v, want 1", got)
	}
}

func TestBellCorrelations(t *testing.T) {
	// Bell state: <ZZ> = <XX> = 1, <ZI> = 0, <YY> = -1.
	bell := []complex128{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}
	cases := map[string]float64{"ZZ": 1, "XX": 1, "YY": -1, "ZI": 0, "IZ": 0, "XY": 0}
	for ops, want := range cases {
		o := New(2).Add(1, ops)
		if got := o.ExpectationArray(bell); math.Abs(got-want) > eps {
			t.Errorf("<Bell|%s|Bell> = %v, want %v", ops, got, want)
		}
	}
}

func TestArrayAndDDAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(4)
		c := circuit.New("r", n)
		for i := 0; i < 15; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Append(circuit.U3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.Intn(n)))
			case 1:
				c.Append(circuit.H(rng.Intn(n)))
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.CX(a, b))
				}
			}
		}
		sim := ddsim.New(n)
		sim.Run(c)
		sv := statevec.New(n, 1)
		sv.ApplyCircuit(c)

		// Random 3-term observable.
		o := New(n)
		letters := []byte("IXYZ")
		for k := 0; k < 3; k++ {
			ops := make([]byte, n)
			for q := range ops {
				ops[q] = letters[rng.Intn(4)]
			}
			o.Add(rng.NormFloat64(), string(ops))
		}
		ea := o.ExpectationArray(sv.Amplitudes())
		ed := o.ExpectationDD(sim.Manager(), sim.State())
		if math.Abs(ea-ed) > 1e-8 {
			t.Fatalf("trial %d: array %v vs DD %v for %s", trial, ea, ed, o)
		}
	}
}

func TestRhoExpectationMatchesPureState(t *testing.T) {
	// For a noiseless density matrix, tr(P rho) == <psi|P|psi>.
	n := 3
	c := circuit.New("ghz3", n)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.CX(1, 2))
	ns := noise.New(n, noise.Model{})
	ns.Run(c)
	sv := statevec.New(n, 1)
	sv.ApplyCircuit(c)
	o := New(n).Add(1, "ZZZ").Add(0.5, "XXX").Add(-2, "IZI")
	er := o.ExpectationRho(ns.Manager(), ns.Rho())
	ea := o.ExpectationArray(sv.Amplitudes())
	if math.Abs(er-ea) > 1e-8 {
		t.Fatalf("rho %v vs array %v", er, ea)
	}
}

func TestDepolarizedExpectationShrinks(t *testing.T) {
	// Depolarizing noise pulls <ZZ> of a Bell pair toward 0.
	n := 2
	c := circuit.New("bell", n)
	c.Append(circuit.H(0), circuit.CX(0, 1))
	clean := noise.New(n, noise.Model{})
	clean.Run(c)
	noisy := noise.New(n, noise.Model{GateNoise: []noise.Channel{noise.Depolarizing(0.2)}})
	noisy.Run(c)
	o := New(n).Add(1, "ZZ")
	ec := o.ExpectationRho(clean.Manager(), clean.Rho())
	en := o.ExpectationRho(noisy.Manager(), noisy.Rho())
	if math.Abs(ec-1) > eps {
		t.Fatalf("clean <ZZ> = %v", ec)
	}
	if en >= ec-0.05 || en < 0 {
		t.Fatalf("noisy <ZZ> = %v, want in (0, %v)", en, ec)
	}
}

func TestParse(t *testing.T) {
	o, err := Parse(2, "ZZ + 0.5 XX - 1.5 IZ")
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Terms) != 3 {
		t.Fatalf("terms = %d", len(o.Terms))
	}
	if o.Terms[1].Coefficient != 0.5 || o.Terms[2].Coefficient != -1.5 {
		t.Fatalf("coefficients wrong: %s", o)
	}
	bell := []complex128{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}
	want := 1.0 + 0.5*1 - 1.5*0
	if got := o.ExpectationArray(bell); math.Abs(got-want) > eps {
		t.Fatalf("parsed observable expectation %v, want %v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"Z", "ZZZ", "QQ", "x ZZ", "1.5"} {
		if _, err := Parse(2, bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	if o, err := Parse(2, ""); err != nil || len(o.Terms) != 0 {
		t.Error("empty observable rejected")
	}
}

func TestAddPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { New(2).Add(1, "Z") },
		func() { New(1).Add(1, "Q") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad input accepted")
				}
			}()
			f()
		}()
	}
}

func TestIsingEnergyMatchesVQEExample(t *testing.T) {
	// The observable package must agree with the hand-rolled energy
	// computation of examples/vqe on a small transverse-field Ising model.
	n := 4
	const J, h = 1.0, 0.5
	o := New(n)
	for i := 0; i+1 < n; i++ {
		ops := []byte("IIII")
		ops[i], ops[i+1] = 'Z', 'Z'
		o.Add(-J, string(ops))
	}
	for i := 0; i < n; i++ {
		ops := []byte("IIII")
		ops[i] = 'X'
		o.Add(-h, string(ops))
	}
	rng := rand.New(rand.NewSource(7))
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	got := o.ExpectationArray(amps)
	// Direct dense evaluation.
	want := 0.0
	for idx, a := range amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		for i := 0; i+1 < n; i++ {
			zi := 1.0 - 2.0*float64(idx>>uint(i)&1)
			zj := 1.0 - 2.0*float64(idx>>uint(i+1)&1)
			want += -J * zi * zj * p
		}
	}
	for i := 0; i < n; i++ {
		x := 0.0
		for idx, a := range amps {
			b := amps[idx^1<<uint(i)]
			x += real(a)*real(b) + imag(a)*imag(b)
		}
		want += -h * x
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Ising energy %v, want %v", got, want)
	}
}
