// Package harness runs the paper's evaluation (Section 4): it drives the
// three engines — FlatDD (internal/core), the DDSIM substitute
// (internal/ddsim) and the Quantum++ substitute (internal/statevec) — over
// the benchmark circuit families, with per-run timeouts standing in for the
// paper's 24-hour cutoff, and renders every table and figure as text.
//
// Experiment identifiers match DESIGN.md: fig1, fig3, table1, fig11, fig12,
// fig13, fig14, table2.
package harness

import (
	"context"
	"errors"
	"time"

	"flatdd/internal/circuit"
	"flatdd/internal/core"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
	"flatdd/internal/obs"
	"flatdd/internal/sched"
	"flatdd/internal/statevec"
	"flatdd/internal/workloads"
)

// Engine names used in result rows.
const (
	EngineFlatDD   = "FlatDD"
	EngineDDSIM    = "DDSIM"
	EngineDDSIMPar = "DDSIM-par"
	EngineQuantum  = "Quantum++"
)

// Result is one engine run on one circuit.
type Result struct {
	Circuit     string
	Qubits      int
	Gates       int
	Engine      string
	Runtime     time.Duration
	TimedOut    bool
	Memory      uint64 // working-set estimate in bytes
	ConvertedAt int    // FlatDD only; -1 otherwise
	Stats       *core.Stats
	// Metrics is the end-of-run registry snapshot; non-nil only when the
	// run was instrumented (RunFlatDD with Options.Metrics set).
	Metrics *obs.Snapshot
}

// ddNodeBytes aliases the shared per-node footprint model (see
// dd.NodeBytes) so harness memory estimates agree with core and the
// resource ledger.
const ddNodeBytes = dd.NodeBytes

// RunFlatDD runs the hybrid engine with the given options and timeout.
// The timeout rides on the run context (core.RunContext); a run that
// exceeds it returns core.ErrDeadlineExceeded and is reported through
// Result.TimedOut, matching the paper's cutoff semantics.
func RunFlatDD(c *circuit.Circuit, opts core.Options, timeout time.Duration) Result {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	s := core.New(c.Qubits, opts)
	start := time.Now()
	st, err := s.RunContext(ctx, c)
	stats := st
	res := Result{
		Circuit: c.Name, Qubits: c.Qubits, Gates: c.GateCount(),
		Engine: EngineFlatDD, Runtime: time.Since(start),
		TimedOut: errors.Is(err, core.ErrDeadlineExceeded),
		Memory:   st.MemoryBytes, ConvertedAt: st.ConvertedAtGate, Stats: &stats,
	}
	if opts.Metrics != nil {
		snap := opts.Metrics.Snapshot()
		res.Metrics = &snap
	}
	return res
}

// RunDDSIM runs the pure-DD baseline gate by gate, honoring the timeout.
func RunDDSIM(c *circuit.Circuit, timeout time.Duration) Result {
	s := ddsim.New(c.Qubits)
	start := time.Now()
	deadline := time.Time{}
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	timedOut := false
	for i := range c.Gates {
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
			break
		}
		s.ApplyGate(&c.Gates[i])
	}
	return Result{
		Circuit: c.Name, Qubits: c.Qubits, Gates: c.GateCount(),
		Engine: EngineDDSIM, Runtime: time.Since(start), TimedOut: timedOut,
		Memory: uint64(s.Manager().PeakNodeCount()) * ddNodeBytes, ConvertedAt: -1,
	}
}

// RunDDSIMParallel runs the DD baseline with task-parallel gate
// application: each gate's DD multiplication is decomposed into
// independent sub-DD recursions on a scheduler pool of the given worker
// count (bit-identical to RunDDSIM's results for any thread count).
func RunDDSIMParallel(c *circuit.Circuit, threads int, timeout time.Duration) Result {
	pool := sched.New(threads)
	defer pool.Close()
	s := ddsim.New(c.Qubits)
	s.SetParallelism(pool.Run, pool.Threads())
	start := time.Now()
	deadline := time.Time{}
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	timedOut := false
	for i := range c.Gates {
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
			break
		}
		s.ApplyGate(&c.Gates[i])
	}
	return Result{
		Circuit: c.Name, Qubits: c.Qubits, Gates: c.GateCount(),
		Engine: EngineDDSIMPar, Runtime: time.Since(start), TimedOut: timedOut,
		Memory: uint64(s.Manager().PeakNodeCount()) * ddNodeBytes, ConvertedAt: -1,
	}
}

// RunStatevec runs the array baseline gate by gate with the given worker
// count, honoring the timeout.
func RunStatevec(c *circuit.Circuit, threads int, timeout time.Duration) Result {
	s := statevec.New(c.Qubits, threads)
	start := time.Now()
	deadline := time.Time{}
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	timedOut := false
	for i := range c.Gates {
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
			break
		}
		s.Apply(&c.Gates[i])
	}
	return Result{
		Circuit: c.Name, Qubits: c.Qubits, Gates: c.GateCount(),
		Engine: EngineQuantum, Runtime: time.Since(start), TimedOut: timedOut,
		Memory: s.MemoryBytes(), ConvertedAt: -1,
	}
}

// TraceDDSIM returns the per-gate runtimes of the DD baseline (Figure 11).
func TraceDDSIM(c *circuit.Circuit, timeout time.Duration) []time.Duration {
	s := ddsim.New(c.Qubits)
	out := make([]time.Duration, 0, c.GateCount())
	deadline := time.Now().Add(timeout)
	for i := range c.Gates {
		if timeout > 0 && time.Now().After(deadline) {
			break
		}
		g := time.Now()
		s.ApplyGate(&c.Gates[i])
		out = append(out, time.Since(g))
	}
	return out
}

// TraceStatevec returns the per-gate runtimes of the array baseline.
func TraceStatevec(c *circuit.Circuit, threads int) []time.Duration {
	s := statevec.New(c.Qubits, threads)
	out := make([]time.Duration, 0, c.GateCount())
	for i := range c.Gates {
		g := time.Now()
		s.Apply(&c.Gates[i])
		out = append(out, time.Since(g))
	}
	return out
}

// Scale selects the benchmark sizes.
type Scale string

const (
	// ScaleTiny is used by unit tests and quick smoke runs.
	ScaleTiny Scale = "tiny"
	// ScaleSmall is the container-scale default: the same circuit
	// families as the paper at sizes a single-machine Go run completes in
	// minutes.
	ScaleSmall Scale = "small"
	// ScalePaper uses the paper's register sizes (needs a large machine
	// and long timeouts, exactly like the original evaluation).
	ScalePaper Scale = "paper"
)

// Named is a labeled benchmark circuit.
type Named struct {
	Label string
	C     *circuit.Circuit
}

const workloadSeed = 20240812 // ICPP'24 started August 12, 2024

func mk(label, kind string, n int) Named {
	c, err := workloads.Build(kind, n, workloadSeed)
	if err != nil {
		panic(err)
	}
	return Named{Label: label, C: c}
}

// mkTinyDNN and mkTinySup build shallow variants of the deep families so
// the tiny scale finishes in seconds while keeping the circuit structure.
func mkTinyDNN(label string, n int) Named {
	return Named{Label: label, C: workloads.DNN(n, 8, workloadSeed)}
}

func mkTinySup(label string, n int) Named {
	return Named{Label: label, C: workloads.SupremacyGrid(n, 16, workloadSeed)}
}

// Table1Circuits returns the 12-circuit suite of Table 1 at the given
// scale.
func Table1Circuits(scale Scale) []Named {
	switch scale {
	case ScalePaper:
		return []Named{
			mk("DNN-16", "dnn", 16), mk("DNN-20", "dnn", 20), mk("DNN-25", "dnn", 25),
			mk("Adder-28", "adder", 28), mk("GHZ-23", "ghz", 23), mk("VQE-16", "vqe", 16),
			mk("KNN-25", "knn", 25), mk("KNN-31", "knn", 31), mk("Swaptest-25", "swaptest", 25),
			mk("Supremacy-20", "supremacy", 20), mk("Supremacy-24", "supremacy", 24),
			mk("Supremacy-26", "supremacy", 26),
		}
	case ScaleTiny:
		return []Named{
			mkTinyDNN("DNN-6", 6), mkTinyDNN("DNN-7", 7), mkTinyDNN("DNN-8", 8),
			mk("Adder-8", "adder", 8), mk("GHZ-10", "ghz", 10), mk("VQE-8", "vqe", 8),
			mk("KNN-7", "knn", 7), mk("KNN-9", "knn", 9), mk("Swaptest-7", "swaptest", 7),
			mkTinySup("Supremacy-6", 6), mkTinySup("Supremacy-8", 8),
			mkTinySup("Supremacy-9", 9),
		}
	default: // ScaleSmall
		return []Named{
			mk("DNN-10", "dnn", 10), mk("DNN-12", "dnn", 12), mk("DNN-14", "dnn", 14),
			mk("Adder-16", "adder", 16), mk("GHZ-16", "ghz", 16), mk("VQE-12", "vqe", 12),
			mk("KNN-13", "knn", 13), mk("KNN-15", "knn", 15), mk("Swaptest-13", "swaptest", 13),
			mk("Supremacy-10", "supremacy", 10), mk("Supremacy-12", "supremacy", 12),
			mk("Supremacy-14", "supremacy", 14),
		}
	}
}

// Fig1Circuits returns the two regular + two irregular circuits of
// Figure 1.
func Fig1Circuits(scale Scale) []Named {
	switch scale {
	case ScalePaper:
		return []Named{mk("Adder-28", "adder", 28), mk("GHZ-23", "ghz", 23),
			mk("DNN-16", "dnn", 16), mk("VQE-16", "vqe", 16)}
	case ScaleTiny:
		return []Named{mk("Adder-8", "adder", 8), mk("GHZ-10", "ghz", 10),
			mkTinyDNN("DNN-8", 8), mk("VQE-8", "vqe", 8)}
	default:
		return []Named{mk("Adder-14", "adder", 14), mk("GHZ-16", "ghz", 16),
			mk("DNN-12", "dnn", 12), mk("VQE-12", "vqe", 12)}
	}
}

// DeepCircuits returns the six deep circuits (>1000 gates) of Table 2 and
// Figure 14.
func DeepCircuits(scale Scale) []Named {
	switch scale {
	case ScalePaper:
		return []Named{
			mk("DNN-16", "dnn", 16), mk("DNN-20", "dnn", 20), mk("DNN-25", "dnn", 25),
			mk("Supremacy-20", "supremacy", 20), mk("Supremacy-24", "supremacy", 24),
			mk("Supremacy-26", "supremacy", 26),
		}
	case ScaleTiny:
		return []Named{
			mkTinyDNN("DNN-6", 6), mkTinyDNN("DNN-7", 7), mkTinyDNN("DNN-8", 8),
			mkTinySup("Supremacy-6", 6), mkTinySup("Supremacy-8", 8),
			mkTinySup("Supremacy-9", 9),
		}
	default:
		return []Named{
			mk("DNN-10", "dnn", 10), mk("DNN-12", "dnn", 12), mk("DNN-14", "dnn", 14),
			mk("Supremacy-10", "supremacy", 10), mk("Supremacy-12", "supremacy", 12),
			mk("Supremacy-14", "supremacy", 14),
		}
	}
}

// ScalabilityCircuits returns the two circuits of Figure 12.
func ScalabilityCircuits(scale Scale) []Named {
	switch scale {
	case ScalePaper:
		return []Named{mk("Supremacy-20", "supremacy", 20), mk("KNN-25", "knn", 25)}
	case ScaleTiny:
		return []Named{mkTinySup("Supremacy-8", 8), mk("KNN-9", "knn", 9)}
	default:
		return []Named{mk("Supremacy-12", "supremacy", 12), mk("KNN-15", "knn", 15)}
	}
}

// DDParCircuits returns the circuits of the parallel-DD-phase thread
// sweep: one supremacy-style circuit whose state DD grows past the
// parallel cutoff, plus one KNN circuit as a regular counterpoint.
func DDParCircuits(scale Scale) []Named {
	switch scale {
	case ScalePaper:
		return []Named{mk("Supremacy-20", "supremacy", 20), mk("KNN-25", "knn", 25)}
	case ScaleTiny:
		return []Named{mkTinySup("Supremacy-9", 9), mk("KNN-9", "knn", 9)}
	default:
		return []Named{mk("Supremacy-12", "supremacy", 12), mk("KNN-15", "knn", 15)}
	}
}

// ConversionCircuits returns the 10-circuit set of Figure 13 (the Table 1
// suite minus the two circuits that never leave the DD phase).
func ConversionCircuits(scale Scale) []Named {
	all := Table1Circuits(scale)
	out := make([]Named, 0, 10)
	for _, nc := range all {
		if nc.C.Name[:3] == "add" || nc.C.Name[:3] == "ghz" {
			continue
		}
		out = append(out, nc)
	}
	return out
}
