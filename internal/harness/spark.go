package harness

import (
	"math"
	"strings"
	"time"
)

// sparkLevels are the eighth-block characters used for inline charts.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a compact inline chart of the series, linearly scaled
// between the series min and max. Non-finite values render as spaces. An
// empty series yields an empty string.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo := math.Inf(1)
	hi := math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) { // nothing finite
		return strings.Repeat(" ", len(vals))
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// LogSparkline is Sparkline on log10 of the values, which suits the
// per-gate runtime series of Figures 3 and 11 (they span orders of
// magnitude). Non-positive values render as the lowest level.
func LogSparkline(vals []float64) string {
	logs := make([]float64, len(vals))
	minPos := math.Inf(1)
	for _, v := range vals {
		if v > 0 {
			minPos = math.Min(minPos, v)
		}
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}
	for i, v := range vals {
		if v <= 0 {
			v = minPos
		}
		logs[i] = math.Log10(v)
	}
	return Sparkline(logs)
}

// DurationSeries converts durations to seconds for sparkline rendering.
func DurationSeries(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Downsample reduces a series to at most width points by bucket-averaging,
// so long per-gate traces fit a terminal line.
func Downsample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for b := 0; b < width; b++ {
		lo := b * len(vals) / width
		hi := (b + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[b] = sum / float64(hi-lo)
	}
	return out
}
