package harness

import (
	"math"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

func TestSparklineBasic(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length %d, want 8", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("extremes wrong: %s", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("monotone series produced non-monotone sparkline: %s", s)
		}
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if s != "▁▁▁" {
		t.Fatalf("constant series: %q", s)
	}
}

func TestSparklineEmptyAndNaN(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty series should render empty")
	}
	s := Sparkline([]float64{math.NaN(), math.Inf(1)})
	if strings.TrimSpace(s) != "" {
		t.Fatalf("non-finite-only series: %q", s)
	}
	s = Sparkline([]float64{1, math.NaN(), 3})
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("NaN should render one cell: %q", s)
	}
}

func TestLogSparklineSpansDecades(t *testing.T) {
	// 1µs .. 1s per-gate times: log scale must use the full range.
	s := []rune(LogSparkline([]float64{1e-6, 1e-3, 1}))
	if s[0] != '▁' || s[2] != '█' {
		t.Fatalf("log scaling wrong: %s", string(s))
	}
	// Middle decade lands mid-scale, not at an extreme.
	if s[1] == '▁' || s[1] == '█' {
		t.Fatalf("log midpoint at extreme: %s", string(s))
	}
}

func TestLogSparklineHandlesZeros(t *testing.T) {
	s := LogSparkline([]float64{0, 1e-3, 1})
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("length wrong: %q", s)
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	ds := Downsample(vals, 10)
	if len(ds) != 10 {
		t.Fatalf("len %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatal("bucket averages should stay increasing")
		}
	}
	// Short series pass through.
	if got := Downsample(vals[:5], 10); len(got) != 5 {
		t.Fatalf("short series resampled: %d", len(got))
	}
}

func TestDurationSeries(t *testing.T) {
	ds := DurationSeries([]time.Duration{time.Second, 500 * time.Millisecond})
	if ds[0] != 1 || ds[1] != 0.5 {
		t.Fatalf("conversion wrong: %v", ds)
	}
}
