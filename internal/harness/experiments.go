package harness

import (
	"fmt"
	"io"
	"math"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/dmav"
	"flatdd/internal/obs"
	"flatdd/internal/perf"
)

// Config parameterizes an experiment run.
type Config struct {
	Scale   Scale
	Threads int           // worker count for FlatDD and Quantum++ (paper: 16)
	Timeout time.Duration // per-engine-run cutoff (paper: 24 h)
	Out     io.Writer
	// CSVDir, when non-empty, additionally saves every rendered table as
	// <CSVDir>/<experiment-id>.csv for external plotting.
	CSVDir string
	// Reps re-runs every timed engine cell this many times (default 1);
	// tables then show mean ±stddev and the perf record stores the full
	// repetition statistics.
	Reps int
	// Metrics, when non-nil, instruments FlatDD runs with this shared
	// registry. Per-cell values are isolated with Snapshot.Delta, so one
	// registry can span a whole multi-experiment invocation (and be
	// served or sampled live while it runs).
	Metrics *obs.Registry
	// Record, when non-nil, receives one perf.Cell per engine-circuit
	// cell from the recording experiments (fig1, table1, fig12, metrics).
	Record *perf.Record
}

func (c Config) withDefaults() Config {
	if c.Scale == "" {
		c.Scale = ScaleSmall
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if c.Threads < 1 {
		c.Threads = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Minute
	}
	return c
}

// Fig1 reproduces Figure 1: normalized runtime and memory of the DD-based
// and array-based baselines on two regular and two irregular circuits.
func Fig1(cfg Config) []Result {
	cfg = cfg.withDefaults()
	tbl := NewTable("Figure 1: DD-based vs array-based simulation (normalized; lower is better)",
		"Circuit", "Qubits", "Gates", "DD runtime", "Array runtime", "DD rt (norm)", "Array rt (norm)",
		"DD memory", "Array memory", "DD mem (norm)", "Array mem (norm)")
	var all []Result
	for _, nc := range Fig1Circuits(cfg.Scale) {
		nc := nc
		dd, dw, dm := cfg.runReps(func() Result { return RunDDSIM(nc.C, cfg.Timeout) })
		arr, aw, am := cfg.runReps(func() Result { return RunStatevec(nc.C, cfg.Threads, cfg.Timeout) })
		cfg.recordCell("fig1", dd, dw, dm, 0)
		cfg.recordCell("fig1", arr, aw, am, 0)
		all = append(all, dd, arr)
		ddSec, arrSec := dw.MeanNs/1e9, aw.MeanNs/1e9
		minRT := math.Min(ddSec, arrSec)
		minMem := float64(minU64(dd.Memory, arr.Memory))
		tbl.AddRow(nc.Label, nc.C.Qubits, nc.C.GateCount(),
			fmtRun(dd, dw), fmtRun(arr, aw),
			ddSec/minRT, arrSec/minRT,
			fmtMB(dd.Memory), fmtMB(arr.Memory),
			float64(dd.Memory)/minMem, float64(arr.Memory)/minMem)
	}
	emit(cfg, "fig1", tbl)
	return all
}

// Fig3 reproduces Figure 3: the per-gate runtime trace of FlatDD showing
// the DD phase, the conversion point, and the stable DMAV phase.
func Fig3(cfg Config) core.Stats {
	cfg = cfg.withDefaults()
	nc := Fig1Circuits(cfg.Scale)[2] // the DNN circuit
	var events []core.TraceEvent
	opts := core.Options{Threads: cfg.Threads, Trace: func(e core.TraceEvent) { events = append(events, e) }}
	res := RunFlatDD(nc.C, opts, cfg.Timeout)
	tbl := NewTable(fmt.Sprintf("Figure 3: FlatDD per-gate trace on %s (conversion at gate %d)",
		nc.Label, res.ConvertedAt),
		"Gate", "Engine", "DD size", "EWMA", "Gate runtime")
	step := len(events) / 40
	if step < 1 {
		step = 1
	}
	for i, e := range events {
		if i%step != 0 && !e.Converted {
			continue
		}
		mark := ""
		if e.Converted {
			mark = " <= convert"
		}
		tbl.AddRow(fmt.Sprintf("%d%s", e.GateIndex, mark), e.Phase.String(), e.DDSize, e.EWMA, e.Duration)
	}
	emit(cfg, "fig3", tbl)
	// Inline chart of the full per-gate runtime series (log scale), the
	// visual shape of Figure 3: flat DD phase, conversion spike, steady
	// DMAV plateau.
	times := make([]float64, len(events))
	sizes := make([]float64, len(events))
	for i, ev := range events {
		times[i] = ev.Duration.Seconds()
		sizes[i] = float64(ev.DDSize)
	}
	fmt.Fprintf(cfg.Out, "per-gate runtime (log): %s\n", LogSparkline(Downsample(times, 72)))
	fmt.Fprintf(cfg.Out, "state-DD size:          %s\n\n", Sparkline(Downsample(sizes, 72)))
	return *res.Stats
}

// Table1 reproduces Table 1: runtime and memory of FlatDD, DDSIM and
// Quantum++ over the 12-circuit suite, with per-circuit speed-ups and
// geometric means.
func Table1(cfg Config) []Result {
	cfg = cfg.withDefaults()
	tbl := NewTable(fmt.Sprintf("Table 1: overall comparison (threads=%d, timeout=%v)", cfg.Threads, cfg.Timeout),
		"Circuit", "n", "Gates",
		"FlatDD rt", "FlatDD mem",
		"DDSIM rt", "DDSIM speedup", "DDSIM mem",
		"Q++ rt", "Q++ speedup", "Q++ mem")
	var all []Result
	var fRT, dRT, qRT, fMem, dMem, qMem, dSp, qSp []float64
	for _, nc := range Table1Circuits(cfg.Scale) {
		nc := nc
		f, fw, fm := cfg.runReps(func() Result { return RunFlatDD(nc.C, cfg.flatOpts(), cfg.Timeout) })
		d, dw, dm := cfg.runReps(func() Result { return RunDDSIM(nc.C, cfg.Timeout) })
		q, qw, qm := cfg.runReps(func() Result { return RunStatevec(nc.C, cfg.Threads, cfg.Timeout) })
		cfg.recordCell("table1", f, fw, fm, 0)
		cfg.recordCell("table1", d, dw, dm, 0)
		cfg.recordCell("table1", q, qw, qm, 0)
		all = append(all, f, d, q)
		sd := dw.MeanNs / fw.MeanNs
		sq := qw.MeanNs / fw.MeanNs
		tbl.AddRow(nc.Label, nc.C.Qubits, nc.C.GateCount(),
			fmtRun(f, fw), fmtMB(f.Memory),
			fmtRun(d, dw), fmtSpeedup(sd, d.TimedOut), fmtMB(d.Memory),
			fmtRun(q, qw), fmtSpeedup(sq, q.TimedOut), fmtMB(q.Memory))
		fRT = append(fRT, fw.MeanNs/1e9)
		dRT = append(dRT, dw.MeanNs/1e9)
		qRT = append(qRT, qw.MeanNs/1e9)
		fMem = append(fMem, float64(f.Memory))
		dMem = append(dMem, float64(d.Memory))
		qMem = append(qMem, float64(q.Memory))
		dSp = append(dSp, sd)
		qSp = append(qSp, sq)
	}
	tbl.AddRow("Geomean", "", "",
		fmtSeconds(time.Duration(GeoMean(fRT)*float64(time.Second))), fmtMB(uint64(GeoMean(fMem))),
		fmtSeconds(time.Duration(GeoMean(dRT)*float64(time.Second))), fmtSpeedup(GeoMean(dSp), anyTimedOut(all, EngineDDSIM)), fmtMB(uint64(GeoMean(dMem))),
		fmtSeconds(time.Duration(GeoMean(qRT)*float64(time.Second))), fmtSpeedup(GeoMean(qSp), anyTimedOut(all, EngineQuantum)), fmtMB(uint64(GeoMean(qMem))))
	emit(cfg, "table1", tbl)
	return all
}

// Fig11 reproduces Figure 11: per-gate runtime of the three engines on one
// DNN and one supremacy circuit, bucketed over gate indices.
func Fig11(cfg Config) {
	cfg = cfg.withDefaults()
	set := DeepCircuits(cfg.Scale)
	for _, nc := range []Named{set[1], set[4]} { // a DNN and a supremacy circuit
		var flat []core.TraceEvent
		RunFlatDD(nc.C, core.Options{Threads: cfg.Threads,
			Trace: func(e core.TraceEvent) { flat = append(flat, e) }}, cfg.Timeout)
		ddTimes := TraceDDSIM(nc.C, cfg.Timeout)
		svTimes := TraceStatevec(nc.C, cfg.Threads)
		buckets := 20
		tbl := NewTable(fmt.Sprintf("Figure 11: per-gate runtime on %s (bucket averages)", nc.Label),
			"Gates", "FlatDD", "DDSIM", "Quantum++")
		total := nc.C.GateCount()
		for b := 0; b < buckets; b++ {
			lo := b * total / buckets
			hi := (b + 1) * total / buckets
			if lo >= hi {
				continue
			}
			tbl.AddRow(fmt.Sprintf("%d-%d", lo, hi-1),
				avgEventDur(flat, lo, hi), avgDur(ddTimes, lo, hi), avgDur(svTimes, lo, hi))
		}
		emit(cfg, "fig11-"+nc.Label, tbl)
		flatS := make([]float64, len(flat))
		for i, ev := range flat {
			flatS[i] = ev.Duration.Seconds()
		}
		fmt.Fprintf(cfg.Out, "FlatDD    (log): %s\n", LogSparkline(Downsample(flatS, 72)))
		fmt.Fprintf(cfg.Out, "DDSIM     (log): %s\n", LogSparkline(Downsample(DurationSeries(ddTimes), 72)))
		fmt.Fprintf(cfg.Out, "Quantum++ (log): %s\n\n", LogSparkline(Downsample(DurationSeries(svTimes), 72)))
	}
}

// Fig12 reproduces Figure 12: runtime of FlatDD and Quantum++ at 1..16
// threads on a supremacy and a KNN circuit.
func Fig12(cfg Config) map[string]map[int][2]time.Duration {
	cfg = cfg.withDefaults()
	// 3 is deliberate: the scheduler accepts arbitrary thread counts, so
	// the sweep exercises a non-power-of-two point.
	threadCounts := []int{1, 2, 3, 4, 8, 16}
	out := make(map[string]map[int][2]time.Duration)
	for _, nc := range ScalabilityCircuits(cfg.Scale) {
		tbl := NewTable(fmt.Sprintf("Figure 12: thread scalability on %s", nc.Label),
			"Threads", "FlatDD", "FlatDD speedup vs t=1", "Quantum++", "Q++ speedup vs t=1")
		rows := make(map[int][2]time.Duration)
		var f1, q1 time.Duration
		for _, t := range threadCounts {
			t := t
			f, fw, fm := cfg.runReps(func() Result {
				return RunFlatDD(nc.C, core.Options{Threads: t, Metrics: cfg.Metrics}, cfg.Timeout)
			})
			q, qw, qm := cfg.runReps(func() Result { return RunStatevec(nc.C, t, cfg.Timeout) })
			cfg.recordCell("fig12", f, fw, fm, t)
			cfg.recordCell("fig12", q, qw, qm, t)
			fMean, qMean := time.Duration(fw.MeanNs), time.Duration(qw.MeanNs)
			rows[t] = [2]time.Duration{fMean, qMean}
			if t == 1 {
				f1, q1 = fMean, qMean
			}
			tbl.AddRow(t, fmtRun(f, fw), fmtSpeedup(f1.Seconds()/fMean.Seconds(), false),
				fmtRun(q, qw), fmtSpeedup(q1.Seconds()/qMean.Seconds(), false))
		}
		out[nc.Label] = rows
		emit(cfg, "fig12-"+nc.Label, tbl)
	}
	return out
}

// Fig13 reproduces Figure 13: FlatDD's parallel DD-to-array conversion vs
// the sequential DDSIM-style conversion, in absolute time and as a share
// of total simulation time.
func Fig13(cfg Config) {
	cfg = cfg.withDefaults()
	tbl := NewTable(fmt.Sprintf("Figure 13: DD-to-array conversion, parallel (FlatDD) vs sequential (DDSIM-style), threads=%d", cfg.Threads),
		"Circuit", "Converted at", "Parallel conv", "Sequential conv", "Conv speedup",
		"Parallel conv %", "Sequential conv %")
	var speedups []float64
	for _, nc := range ConversionCircuits(cfg.Scale) {
		par := RunFlatDD(nc.C, core.Options{Threads: cfg.Threads}, cfg.Timeout)
		seq := RunFlatDD(nc.C, core.Options{Threads: cfg.Threads, SequentialConversion: true}, cfg.Timeout)
		if par.ConvertedAt < 0 || seq.ConvertedAt < 0 {
			tbl.AddRow(nc.Label, "never", "-", "-", "-", "-", "-")
			continue
		}
		sp := seq.Stats.ConversionTime.Seconds() / par.Stats.ConversionTime.Seconds()
		speedups = append(speedups, sp)
		tbl.AddRow(nc.Label, par.ConvertedAt,
			par.Stats.ConversionTime, seq.Stats.ConversionTime, fmtSpeedup(sp, false),
			fmt.Sprintf("%.2f%%", 100*par.Stats.ConversionTime.Seconds()/par.Runtime.Seconds()),
			fmt.Sprintf("%.2f%%", 100*seq.Stats.ConversionTime.Seconds()/seq.Runtime.Seconds()))
	}
	if len(speedups) > 0 {
		tbl.AddRow("Geomean", "", "", "", fmtSpeedup(GeoMean(speedups), false), "", "")
	}
	emit(cfg, "fig13", tbl)
}

// Fig14 reproduces Figure 14: computational-cost reduction and measured
// speed-up of DMAV caching over 1..16 threads on the six deep circuits.
func Fig14(cfg Config) {
	cfg = cfg.withDefaults()
	threadCounts := []int{1, 2, 4, 8, 16}
	tbl := NewTable("Figure 14: DMAV caching vs no caching (average over the six deep circuits)",
		"Threads", "Cost reduction %", "Speedup %")
	for _, t := range threadCounts {
		var reds, sps []float64
		for _, nc := range DeepCircuits(cfg.Scale) {
			noc := RunFlatDD(nc.C, core.Options{Threads: t, CacheMode: dmav.NeverCache, ForceConvertAfter: 1}, cfg.Timeout)
			auto := RunFlatDD(nc.C, core.Options{Threads: t, CacheMode: dmav.Auto, ForceConvertAfter: 1}, cfg.Timeout)
			c1 := auto.Stats.DMAVStats.MACsC1
			cmin := auto.Stats.DMAVStats.MACsModeled
			if c1 > 0 {
				reds = append(reds, 100*(c1-cmin)/c1)
			}
			sps = append(sps, 100*(noc.Runtime.Seconds()/auto.Runtime.Seconds()-1))
		}
		tbl.AddRow(t, mean(reds), mean(sps))
	}
	emit(cfg, "fig14", tbl)
}

// Table2 reproduces Table 2: FlatDD with DMAV-aware fusion vs without
// fusion vs k-operations on the six deep circuits.
func Table2(cfg Config) {
	cfg = cfg.withDefaults()
	tbl := NewTable(fmt.Sprintf("Table 2: gate fusion on deep circuits (threads=%d)", cfg.Threads),
		"Circuit", "n", "Gates",
		"Fusion rt", "Fusion cost",
		"NoFusion rt", "Speedup", "NoFusion cost", "Red.",
		"K-ops rt", "Speedup", "K-ops cost", "Red.")
	var fuRT, noRT, koRT, spNo, spKo, redNo, redKo []float64
	for _, nc := range DeepCircuits(cfg.Scale) {
		fu := RunFlatDD(nc.C, core.Options{Threads: cfg.Threads, Fusion: core.DMAVAware}, cfg.Timeout)
		no := RunFlatDD(nc.C, core.Options{Threads: cfg.Threads}, cfg.Timeout)
		ko := RunFlatDD(nc.C, core.Options{Threads: cfg.Threads, Fusion: core.KOps, K: 4}, cfg.Timeout)
		cFu, cNo, cKo := fusionCost(fu), fusionCost(no), fusionCost(ko)
		tbl.AddRow(nc.Label, nc.C.Qubits, nc.C.GateCount(),
			maybeTimeout(fu), cFu,
			maybeTimeout(no), fmtSpeedup(no.Runtime.Seconds()/fu.Runtime.Seconds(), no.TimedOut), cNo,
			fmt.Sprintf("%.2fx", cNo/cFu),
			maybeTimeout(ko), fmtSpeedup(ko.Runtime.Seconds()/fu.Runtime.Seconds(), ko.TimedOut), cKo,
			fmt.Sprintf("%.2fx", cKo/cFu))
		fuRT = append(fuRT, fu.Runtime.Seconds())
		noRT = append(noRT, no.Runtime.Seconds())
		koRT = append(koRT, ko.Runtime.Seconds())
		spNo = append(spNo, no.Runtime.Seconds()/fu.Runtime.Seconds())
		spKo = append(spKo, ko.Runtime.Seconds()/fu.Runtime.Seconds())
		redNo = append(redNo, cNo/cFu)
		redKo = append(redKo, cKo/cFu)
	}
	tbl.AddRow("Geomean", "", "",
		fmtSeconds(time.Duration(GeoMean(fuRT)*float64(time.Second))), "",
		fmtSeconds(time.Duration(GeoMean(noRT)*float64(time.Second))), fmtSpeedup(GeoMean(spNo), false), "",
		fmt.Sprintf("%.2fx", GeoMean(redNo)),
		fmtSeconds(time.Duration(GeoMean(koRT)*float64(time.Second))), fmtSpeedup(GeoMean(spKo), false), "",
		fmt.Sprintf("%.2fx", GeoMean(redKo)))
	emit(cfg, "table2", tbl)
}

// MetricsReport runs the instrumented FlatDD engine over the Figure 1
// circuits (two regular, two irregular) and tabulates the internal-layer
// metrics — unique/compute-table hit rates, cnum interning, DMAV caching
// and conversion efficiency — that the other experiments keep hidden. It
// returns the per-circuit results, each carrying its registry snapshot.
func MetricsReport(cfg Config) []Result {
	cfg = cfg.withDefaults()
	tbl := NewTable(fmt.Sprintf("Engine metrics per circuit (threads=%d)", cfg.Threads),
		"Circuit", "Converted at",
		"Unique hit %", "CT hit %", "cnum hit %", "cnum size",
		"DMAV cache hit %", "MACs (modeled)", "Conv eff %", "GC runs")
	pct := func(hits, total int64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", 100*float64(hits)/float64(total))
	}
	// One registry spans every circuit; Snapshot.Delta isolates each
	// run's counters (this is also the shared-registry path the perf
	// record uses).
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	var all []Result
	for _, nc := range Fig1Circuits(cfg.Scale) {
		prev := reg.Snapshot()
		res := RunFlatDD(nc.C, core.Options{Threads: cfg.Threads, Metrics: reg}, cfg.Timeout)
		d := res.Metrics.Delta(prev)
		res.Metrics = &d
		all = append(all, res)
		cfg.recordCell("metrics", res, perf.NewStat([]float64{float64(res.Runtime.Nanoseconds())}), memDelta{}, 0)
		c, g := res.Metrics.Counters, res.Metrics.Gauges
		uniq := c["dd.unique.v.hits"] + c["dd.unique.m.hits"]
		uniqTotal := uniq + c["dd.unique.v.misses"] + c["dd.unique.m.misses"]
		ctHits := c["dd.ct.add.hits"] + c["dd.ct.madd.hits"] + c["dd.ct.mv.hits"] + c["dd.ct.mm.hits"]
		ctTotal := c["dd.ct.add.lookups"] + c["dd.ct.madd.lookups"] + c["dd.ct.mv.lookups"] + c["dd.ct.mm.lookups"]
		convEff := "-"
		if c["convert.runs"] > 0 {
			convEff = fmt.Sprintf("%.0f", 100*res.Metrics.FloatGauges["convert.efficiency"])
		}
		tbl.AddRow(nc.Label, res.ConvertedAt,
			pct(uniq, uniqTotal), pct(ctHits, ctTotal),
			pct(c["cnum.hits"], c["cnum.lookups"]), g["cnum.size"],
			pct(c["dmav.cache.hits"], c["dmav.cache.hits"]+c["dmav.cache.misses"]),
			c["dmav.macs.modeled"], convEff, c["dd.gc.runs"])
	}
	emit(cfg, "metrics", tbl)
	return all
}

// DDPar sweeps the task-parallel DD phase over thread counts: the pure-DD
// engine with concurrent tables and frontier-split gate application
// (DDSIM-par), and the hybrid engine with Options.DDThreads set, against
// their sequential baselines at threads=1. Results are bit-identical
// across the sweep by construction (see dd.MulMVParallel); the sweep
// measures only the cost/benefit of the parallel path.
func DDPar(cfg Config) {
	cfg = cfg.withDefaults()
	threadCounts := []int{1, 2, 4, 8}
	for _, nc := range DDParCircuits(cfg.Scale) {
		tbl := NewTable(fmt.Sprintf("Parallel DD phase: thread sweep on %s", nc.Label),
			"Threads", "DDSIM-par", "speedup vs t=1", "FlatDD (dd-threads)", "speedup vs t=1")
		var d1, f1 time.Duration
		for _, t := range threadCounts {
			t := t
			d, dw, dm := cfg.runReps(func() Result { return RunDDSIMParallel(nc.C, t, cfg.Timeout) })
			f, fw, fm := cfg.runReps(func() Result {
				return RunFlatDD(nc.C, core.Options{Threads: cfg.Threads, DDThreads: t, Metrics: cfg.Metrics}, cfg.Timeout)
			})
			cfg.recordCell("ddpar", d, dw, dm, t)
			cfg.recordCell("ddpar", f, fw, fm, t)
			dMean, fMean := time.Duration(dw.MeanNs), time.Duration(fw.MeanNs)
			if t == 1 {
				d1, f1 = dMean, fMean
			}
			tbl.AddRow(t, fmtRun(d, dw), fmtSpeedup(d1.Seconds()/dMean.Seconds(), false),
				fmtRun(f, fw), fmtSpeedup(f1.Seconds()/fMean.Seconds(), false))
		}
		emit(cfg, "ddpar-"+nc.Label, tbl)
	}
}

// fusionCost extracts the modeled DMAV cost of a FlatDD run: the total
// min(C1, C2) over every executed DMAV gate.
func fusionCost(r Result) float64 {
	if r.Stats == nil {
		return 0
	}
	return r.Stats.DMAVStats.MACsModeled
}

// RunExperiment dispatches an experiment by its DESIGN.md identifier.
func RunExperiment(id string, cfg Config) error {
	switch id {
	case "fig1":
		Fig1(cfg)
	case "fig3":
		Fig3(cfg)
	case "table1":
		Table1(cfg)
	case "fig11":
		Fig11(cfg)
	case "fig12":
		Fig12(cfg)
	case "fig13":
		Fig13(cfg)
	case "fig14":
		Fig14(cfg)
	case "table2":
		Table2(cfg)
	case "ablation":
		Ablation(cfg)
	case "metrics":
		MetricsReport(cfg)
	case "ddpar":
		DDPar(cfg)
	case "tenants":
		Tenants(cfg)
	case "cluster":
		Cluster(cfg)
	case "all":
		for _, e := range ExperimentIDs() {
			if e == "all" {
				continue
			}
			if err := RunExperiment(e, cfg); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("harness: unknown experiment %q (known: %v)", id, ExperimentIDs())
	}
	return nil
}

// ExperimentIDs lists the recognized experiment identifiers.
func ExperimentIDs() []string {
	return []string{"fig1", "fig3", "table1", "fig11", "fig12", "fig13", "fig14", "table2", "ablation", "metrics", "ddpar", "tenants", "cluster", "all"}
}

// Helpers.

func maybeTimeout(r Result) string {
	if r.TimedOut {
		return "> " + fmtSeconds(r.Runtime)
	}
	return fmtSeconds(r.Runtime)
}

func anyTimedOut(rs []Result, engine string) bool {
	for _, r := range rs {
		if r.Engine == engine && r.TimedOut {
			return true
		}
	}
	return false
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func avgDur(ds []time.Duration, lo, hi int) time.Duration {
	if lo >= len(ds) {
		return 0
	}
	if hi > len(ds) {
		hi = len(ds)
	}
	var sum time.Duration
	for _, d := range ds[lo:hi] {
		sum += d
	}
	return sum / time.Duration(hi-lo)
}

func avgEventDur(es []core.TraceEvent, lo, hi int) time.Duration {
	if lo >= len(es) {
		return 0
	}
	if hi > len(es) {
		hi = len(es)
	}
	var sum time.Duration
	for _, e := range es[lo:hi] {
		sum += e.Duration
	}
	return sum / time.Duration(hi-lo)
}
