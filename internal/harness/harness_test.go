package harness

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/obs"
	"flatdd/internal/perf"
)

func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Scale: ScaleTiny, Threads: 4, Timeout: 30 * time.Second, Out: buf}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean(1,100) = %v", g)
	}
	if g := GeoMean([]float64{4}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean(4) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	// Non-positive values are skipped.
	if g := GeoMean([]float64{0, -1, 9}); math.Abs(g-9) > 1e-9 {
		t.Fatalf("GeoMean with junk = %v", g)
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	tbl := NewTable("Title", "A", "B")
	tbl.AddRow("x", 1.5)
	tbl.AddRow("yy", time.Second)
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Title", "| A ", "1.50", "1.00 s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEnginesAgreeOnResultShape(t *testing.T) {
	nc := Fig1Circuits(ScaleTiny)[0]
	f := RunFlatDD(nc.C, core.Options{Threads: 2}, time.Minute)
	d := RunDDSIM(nc.C, time.Minute)
	q := RunStatevec(nc.C, 2, time.Minute)
	for _, r := range []Result{f, d, q} {
		if r.Gates != nc.C.GateCount() || r.Qubits != nc.C.Qubits {
			t.Fatalf("result shape wrong: %+v", r)
		}
		if r.Runtime <= 0 {
			t.Fatalf("%s runtime not measured", r.Engine)
		}
		if r.Memory == 0 {
			t.Fatalf("%s memory not estimated", r.Engine)
		}
	}
	if f.Engine != EngineFlatDD || d.Engine != EngineDDSIM || q.Engine != EngineQuantum {
		t.Fatal("engine labels wrong")
	}
}

func TestTimeoutMarksResult(t *testing.T) {
	nc := Table1Circuits(ScaleSmall)[2] // DNN-14, long enough to exceed 1ns
	r := RunDDSIM(nc.C, time.Nanosecond)
	if !r.TimedOut {
		t.Fatal("1ns timeout did not trigger")
	}
}

func TestCircuitSetsWellFormed(t *testing.T) {
	for _, scale := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		if got := len(Table1Circuits(scale)); got != 12 {
			t.Fatalf("%s: table1 has %d circuits", scale, got)
		}
		if got := len(Fig1Circuits(scale)); got != 4 {
			t.Fatalf("%s: fig1 has %d circuits", scale, got)
		}
		if got := len(DeepCircuits(scale)); got != 6 {
			t.Fatalf("%s: deep set has %d circuits", scale, got)
		}
		if got := len(ScalabilityCircuits(scale)); got != 2 {
			t.Fatalf("%s: scalability set has %d circuits", scale, got)
		}
		if got := len(ConversionCircuits(scale)); got != 10 {
			t.Fatalf("%s: conversion set has %d circuits", scale, got)
		}
	}
}

func TestFig1Tiny(t *testing.T) {
	var buf bytes.Buffer
	results := Fig1(tinyCfg(&buf))
	if len(results) != 8 {
		t.Fatalf("fig1 produced %d results", len(results))
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("missing title")
	}
}

func TestFig3Tiny(t *testing.T) {
	var buf bytes.Buffer
	st := Fig3(tinyCfg(&buf))
	if st.Gates == 0 {
		t.Fatal("fig3 ran nothing")
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("missing title")
	}
}

func TestTable1Tiny(t *testing.T) {
	var buf bytes.Buffer
	results := Table1(tinyCfg(&buf))
	if len(results) != 36 {
		t.Fatalf("table1 produced %d results", len(results))
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Geomean", "DNN-8", "Supremacy-9"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestFig12Tiny(t *testing.T) {
	var buf bytes.Buffer
	out := Fig12(tinyCfg(&buf))
	if len(out) != 2 {
		t.Fatalf("fig12 covered %d circuits", len(out))
	}
	for label, rows := range out {
		if len(rows) != 6 {
			t.Fatalf("%s has %d thread rows", label, len(rows))
		}
		if _, ok := rows[3]; !ok {
			t.Fatalf("%s missing the non-power-of-two threads=3 row", label)
		}
	}
}

func TestFig13Tiny(t *testing.T) {
	var buf bytes.Buffer
	Fig13(tinyCfg(&buf))
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Fatal("missing title")
	}
}

func TestFig14Tiny(t *testing.T) {
	var buf bytes.Buffer
	Fig14(tinyCfg(&buf))
	out := buf.String()
	if !strings.Contains(out, "Figure 14") || !strings.Contains(out, "16") {
		t.Fatalf("fig14 output incomplete:\n%s", out)
	}
}

func TestTable2Tiny(t *testing.T) {
	var buf bytes.Buffer
	Table2(tinyCfg(&buf))
	out := buf.String()
	for _, want := range []string{"Table 2", "Geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("fig1", tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiment("bogus", tinyCfg(&buf)); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestAblationTiny(t *testing.T) {
	var buf bytes.Buffer
	Ablation(tinyCfg(&buf))
	out := buf.String()
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.CSVDir = dir
	Fig1(cfg)
	data, err := os.ReadFile(filepath.Join(dir, "fig1.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(data), "Circuit") || !strings.Contains(string(data), "DNN-8") {
		t.Fatalf("csv content wrong:\n%s", data)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := fmtMB(1_500_000); got != "1.50 MB" {
		t.Errorf("fmtMB: %q", got)
	}
	if got := fmtSpeedup(2.5, false); got != "2.50x" {
		t.Errorf("fmtSpeedup: %q", got)
	}
	if got := fmtSpeedup(3, true); got != "> 3.00x" {
		t.Errorf("fmtSpeedup lower bound: %q", got)
	}
	if got := fmtSeconds(1500 * time.Millisecond); got != "1.50 s" {
		t.Errorf("fmtSeconds: %q", got)
	}
	if got := fmtSeconds(250 * time.Microsecond); got != "250 µs" {
		t.Errorf("fmtSeconds µs: %q", got)
	}
	if got := fmtFloat(0.0); got != "0" {
		t.Errorf("fmtFloat zero: %q", got)
	}
	if got := fmtFloat(1e9); got != "1.00e+09" {
		t.Errorf("fmtFloat big: %q", got)
	}
}

func TestGeoMeanDurations(t *testing.T) {
	g := GeoMeanDurations([]time.Duration{time.Second, 4 * time.Second})
	if math.Abs(g-2) > 1e-9 {
		t.Fatalf("GeoMeanDurations = %v", g)
	}
}

func TestTable1WithRepsAndRecord(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Reps = 2
	cfg.Metrics = obs.New()
	cfg.Record = perf.NewRecord("table1", string(cfg.Scale), cfg.Threads, cfg.Reps)
	results := Table1(cfg)
	if len(results) != 36 {
		t.Fatalf("table1 with reps produced %d results", len(results))
	}
	if !strings.Contains(buf.String(), "±") {
		t.Fatal("repetition stddev missing from printed table")
	}
	if len(cfg.Record.Cells) != 36 {
		t.Fatalf("record has %d cells, want 36", len(cfg.Record.Cells))
	}
	for _, c := range cfg.Record.Cells {
		if c.Wall.N != 2 {
			t.Fatalf("cell %s has %d reps, want 2", c.Key(), c.Wall.N)
		}
		if c.Wall.MeanNs <= 0 || c.Wall.MinNs <= 0 || c.Wall.MaxNs < c.Wall.MinNs {
			t.Fatalf("cell %s has bad wall stats: %+v", c.Key(), c.Wall)
		}
		if c.Gates <= 0 || c.NsPerGate <= 0 {
			t.Fatalf("cell %s has no per-gate cost: %+v", c.Key(), c)
		}
		if c.DMAVCacheHitRate < -1 || c.DMAVCacheHitRate > 1 {
			t.Fatalf("cell %s hit rate out of range: %v", c.Key(), c.DMAVCacheHitRate)
		}
		switch c.Engine {
		case EngineFlatDD:
			if c.PeakDDNodes <= 0 {
				t.Fatalf("FlatDD cell %s has no peak DD nodes", c.Key())
			}
			if c.AllocBytesPerRep == 0 {
				t.Fatalf("FlatDD cell %s has no allocation delta", c.Key())
			}
		case EngineDDSIM, EngineQuantum:
			if c.ConvertedAt != -1 {
				t.Fatalf("baseline cell %s claims conversion at %d", c.Key(), c.ConvertedAt)
			}
		}
	}
	// At least one tiny circuit converts and exercises the DMAV cache.
	sawCache := false
	for _, c := range cfg.Record.Cells {
		if c.Engine == EngineFlatDD && c.DMAVCacheHitRate >= 0 {
			sawCache = true
		}
	}
	if !sawCache {
		t.Fatal("no FlatDD cell recorded a DMAV cache hit rate")
	}
}

func TestRunRepsAggregatesTimeout(t *testing.T) {
	nc := Table1Circuits(ScaleSmall)[2]
	cfg := Config{Reps: 2}
	calls := 0
	res, stat, _ := cfg.runReps(func() Result {
		calls++
		r := RunDDSIM(nc.C, time.Nanosecond)
		if calls == 2 {
			r.TimedOut = false // only the first rep "times out"
		}
		return r
	})
	if calls != 2 || stat.N != 2 {
		t.Fatalf("reps not honored: calls=%d stat=%+v", calls, stat)
	}
	if !res.TimedOut {
		t.Fatal("timeout in an earlier rep was dropped")
	}
}

func TestMetricsReportUsesSharedRegistryDelta(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Metrics = obs.New()
	results := MetricsReport(cfg)
	if len(results) != 4 {
		t.Fatalf("metrics report covered %d circuits", len(results))
	}
	// Every result's snapshot must be a per-run delta, not the shared
	// registry's running total: per-circuit DD-phase gate counts must sum
	// to the registry total, which only holds if each was isolated.
	var sum int64
	for _, r := range results {
		if r.Metrics == nil {
			t.Fatal("result missing metrics snapshot")
		}
		sum += r.Metrics.Counters["core.gates.dd"]
	}
	total := cfg.Metrics.Snapshot().Counters["core.gates.dd"]
	if sum != total || total == 0 {
		t.Fatalf("per-run deltas sum to %d, registry total %d", sum, total)
	}
}

func TestFig12RecordsThreadKeyedCells(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Metrics = obs.New()
	cfg.Record = perf.NewRecord("fig12", string(cfg.Scale), cfg.Threads, 1)
	Fig12(cfg)
	// 2 circuits x 6 thread counts (1,2,3,4,8,16) x 2 engines.
	if len(cfg.Record.Cells) != 24 {
		t.Fatalf("fig12 recorded %d cells, want 24", len(cfg.Record.Cells))
	}
	keys := map[string]bool{}
	for _, c := range cfg.Record.Cells {
		if c.Threads == 0 {
			t.Fatalf("fig12 cell %s missing thread count", c.Key())
		}
		if keys[c.Key()] {
			t.Fatalf("duplicate fig12 cell key %s", c.Key())
		}
		keys[c.Key()] = true
	}
	// Multi-threaded FlatDD cells must carry the scheduler totals (the
	// steal/idle columns of the Fig. 12 parallel-efficiency analysis).
	schedSeen := false
	for _, c := range cfg.Record.Cells {
		if c.Engine == "FlatDD" && c.Threads > 1 && c.SchedTasks > 0 {
			schedSeen = true
		}
	}
	if !schedSeen {
		t.Fatal("no multi-threaded FlatDD cell carries scheduler task metrics")
	}
}
