package harness

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// WriteCSV emits the table as CSV (header row first).
func (t *Table) WriteCSV(w *csv.Writer) error {
	if err := w.Write(t.headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// emit renders the table to the config's writer and, when CSVDir is set,
// also saves it as <CSVDir>/<id>.csv so the figures can be re-plotted.
func emit(cfg Config, id string, tbl *Table) {
	tbl.Render(cfg.Out)
	if cfg.CSVDir == "" {
		return
	}
	if err := os.MkdirAll(cfg.CSVDir, 0o755); err != nil {
		fmt.Fprintf(cfg.Out, "csv export failed: %v\n", err)
		return
	}
	path := filepath.Join(cfg.CSVDir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(cfg.Out, "csv export failed: %v\n", err)
		return
	}
	defer f.Close()
	if err := tbl.WriteCSV(csv.NewWriter(f)); err != nil {
		fmt.Fprintf(cfg.Out, "csv export failed: %v\n", err)
	}
}
