package harness

import (
	"fmt"
	"time"

	"flatdd/internal/circuit"
	"flatdd/internal/convert"
	"flatdd/internal/core"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
	"flatdd/internal/dmav"
	"flatdd/internal/workloads"
)

// Ablation runs three design-choice studies that the paper motivates but
// does not tabulate directly:
//
//  1. the EWMA parameter grid (β, ε) — sensitivity of the conversion point
//     and total runtime to the Section 3.1.1 controller parameters;
//  2. DMAV shared partial-output buffers (Algorithm 2) on vs off;
//  3. the two parallel-conversion optimizations of Figure 4 (load
//     balancing + scalar multiplication) vs a blind thread split vs the
//     sequential baseline.
func Ablation(cfg Config) {
	cfg = cfg.withDefaults()
	ablationEWMA(cfg)
	ablationBufferSharing(cfg)
	ablationConversion(cfg)
}

func ablationEWMA(cfg Config) {
	nc := Fig1Circuits(cfg.Scale)[2] // the DNN circuit
	betas := []float64{0.5, 0.8, 0.9, 0.95, 0.99}
	epsilons := []float64{1.2, 1.5, 2, 3, 5}
	tbl := NewTable(fmt.Sprintf("Ablation A: EWMA parameters on %s (paper default beta=0.9 epsilon=2)", nc.Label),
		"beta", "epsilon", "Converted at", "Runtime")
	for _, b := range betas {
		for _, e := range epsilons {
			r := RunFlatDD(nc.C, core.Options{Threads: cfg.Threads, Beta: b, Epsilon: e}, cfg.Timeout)
			conv := "never"
			if r.ConvertedAt >= 0 {
				conv = fmt.Sprintf("%d", r.ConvertedAt)
			}
			tbl.AddRow(b, e, conv, r.Runtime)
		}
	}
	emit(cfg, "ablation-ewma", tbl)
}

func ablationBufferSharing(cfg Config) {
	nc := DeepCircuits(cfg.Scale)[4] // a supremacy circuit
	n := nc.C.Qubits
	tbl := NewTable(fmt.Sprintf("Ablation B: DMAV shared partial-output buffers on %s (AlwaysCache, threads=%d)", nc.Label, cfg.Threads),
		"Buffer sharing", "Runtime", "Max buffers", "Buffer memory")
	for _, share := range []bool{true, false} {
		m := dd.New(n)
		eng := dmav.New(m, n, cfg.Threads, dmav.AlwaysCache)
		eng.SetBufferSharing(share)
		gates := make([]dd.MEdge, len(nc.C.Gates))
		for i := range nc.C.Gates {
			gates[i] = ddsim.BuildGateDD(m, n, &nc.C.Gates[i])
		}
		v := make([]complex128, uint64(1)<<uint(n))
		v[0] = 1
		w := make([]complex128, len(v))
		maxBuf := 0
		start := time.Now()
		for _, g := range gates {
			c, _ := eng.Apply(g, v, w)
			v, w = w, v
			if c.Buffers > maxBuf {
				maxBuf = c.Buffers
			}
		}
		elapsed := time.Since(start)
		label := "on (paper)"
		bufs := maxBuf
		if !share {
			label = "off"
			bufs = eng.CacheChunks()
		}
		tbl.AddRow(label, elapsed, bufs, fmtMB(uint64(bufs)*uint64(len(v))*16))
	}
	emit(cfg, "ablation-buffers", tbl)
}

func ablationConversion(cfg Config) {
	// Two states where the Figure 4 optimizations matter: a sparse
	// GHZ-like state (zero edges -> load balancing) and a product state
	// (identical children -> scalar multiplication).
	n := 16
	if cfg.Scale == ScaleTiny {
		n = 12
	}
	type prep struct {
		name  string
		build func(s *ddsim.Simulator)
	}
	preps := []prep{
		{"GHZ (sparse, zero edges)", func(s *ddsim.Simulator) {
			g := workloads.GHZ(n)
			s.Run(g)
		}},
		{"Product |+>^n (identical children)", func(s *ddsim.Simulator) {
			for q := 0; q < n; q++ {
				h := circuit.H(q)
				s.ApplyGate(&h)
			}
		}},
	}
	tbl := NewTable(fmt.Sprintf("Ablation C: DD-to-array conversion optimizations (n=%d, threads=%d)", n, cfg.Threads),
		"State", "Sequential", "Naive parallel split", "Fig.4 parallel (load bal. + scalar)")
	for _, p := range preps {
		s := ddsim.New(n)
		p.build(s)
		e := s.State()
		out := make([]complex128, uint64(1)<<uint(n))

		seq := timeIt(func() { clear(out); s.Manager().FillArray(e, n, out) })
		naive := timeIt(func() { clear(out); convert.ParallelNaiveInto(e, n, cfg.Threads, out) })
		opt := timeIt(func() { clear(out); convert.ParallelInto(e, n, cfg.Threads, out) })
		tbl.AddRow(p.name, seq, naive, opt)
	}
	emit(cfg, "ablation-conversion", tbl)
}

func timeIt(f func()) time.Duration {
	// Best of three to damp scheduler noise.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
