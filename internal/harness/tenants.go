package harness

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"flatdd/internal/perf"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// Tenants runs the multi-tenant serving experiment: an in-process
// serve.Server takes a zipf-skewed stream of QV jobs from a "heavy"
// tenant with a sparse "light" tenant interleaved, and the table reports
// per-tenant end-to-end latency percentiles plus the result-cache hit
// rate. The skew means a few circuits dominate each tenant's stream, so
// the canonical-circuit cache and single-flight coalescing absorb most
// repeats without an engine run; the weighted-fair queue keeps the light
// tenant's latency bounded while the heavy tenant saturates the server.
func Tenants(cfg Config) {
	cfg = cfg.withDefaults()
	var heavyJobs, lightJobs, qubits int
	switch cfg.Scale {
	case ScaleTiny:
		heavyJobs, lightJobs, qubits = 24, 6, 8
	case ScalePaper:
		heavyJobs, lightJobs, qubits = 240, 48, 16
	default:
		heavyJobs, lightJobs, qubits = 80, 16, 12
	}

	srv := serve.New(serve.Config{
		Threads:        cfg.Threads,
		MaxInFlight:    2,
		QueueDepth:     heavyJobs + lightJobs + 2,
		DefaultTimeout: cfg.Timeout,
	})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tenants := map[string]*client.Client{
		"heavy": client.New(ts.URL, client.WithTenant("heavy")),
		"light": client.New(ts.URL, client.WithTenant("light")),
	}

	// Zipf-skewed circuit popularity: seeds select from each tenant's own
	// pool of distinct QV circuits, rank-1 dominating. The light tenant's
	// pool is offset so its jobs cannot ride the heavy tenant's cache
	// entries — its latency reflects scheduling, not luck.
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.2, 1, 7)
	ctx := context.Background()
	type sub struct {
		tenant string
		id     string
	}
	subs := make([]sub, 0, heavyJobs+lightJobs)
	submit := func(tenant string, seed int64) {
		resp, err := tenants[tenant].Submit(ctx, &serve.SubmitRequest{
			Circuit: "qv", N: qubits, Seed: seed, Shots: 100,
			TimeoutMS: cfg.Timeout.Milliseconds(),
		})
		if err != nil {
			fmt.Fprintf(cfg.Out, "tenants: %s submit failed: %v\n", tenant, err)
			return
		}
		subs = append(subs, sub{tenant, resp.Job.ID})
	}
	interleave := heavyJobs / lightJobs
	sent := 0
	for i := 0; i < heavyJobs; i++ {
		submit("heavy", 1+int64(zipf.Uint64()))
		if (i+1)%interleave == 0 && sent < lightJobs {
			sent++
			submit("light", 1000+int64(zipf.Uint64()))
		}
	}
	for ; sent < lightJobs; sent++ {
		submit("light", 1000+int64(zipf.Uint64()))
	}

	// End-to-end latency is server-side: submission to terminal state, so
	// cache hits (which complete inside the submit handler) count as ~0.
	latNs := map[string][]float64{}
	for _, s := range subs {
		wctx, cancel := context.WithTimeout(ctx, cfg.Timeout+30*time.Second)
		v, err := tenants[s.tenant].Wait(wctx, s.id, 2*time.Millisecond)
		cancel()
		if err != nil || v.FinishedAt == nil {
			fmt.Fprintf(cfg.Out, "tenants: wait %s: %v\n", s.id, err)
			continue
		}
		latNs[s.tenant] = append(latNs[s.tenant], float64(v.FinishedAt.Sub(v.SubmittedAt)))
	}

	views := map[string]serve.TenantView{}
	for _, tv := range srv.Tenants() {
		views[tv.Name] = tv
	}
	tbl := NewTable("Multi-tenant serving: zipf-skewed QV load, per-tenant latency and cache absorption",
		"Tenant", "Jobs", "Engine runs", "Cache hit rate", "p50", "p95", "p99")
	for _, name := range []string{"heavy", "light"} {
		st := perf.NewStat(latNs[name])
		tv := views[name]
		rate := 0.0
		if total := tv.CacheHits + tv.Coalesced + tv.Misses; total > 0 {
			rate = float64(tv.CacheHits+tv.Coalesced) / float64(total)
		}
		tbl.AddRow(name, len(latNs[name]), tv.Misses, fmt.Sprintf("%.0f%%", 100*rate),
			fmtSeconds(time.Duration(st.P50Ns)),
			fmtSeconds(time.Duration(st.P95Ns)),
			fmtSeconds(time.Duration(st.P99Ns)))
		if cfg.Record != nil {
			cfg.Record.Add(perf.Cell{
				Exp: "tenants", Circuit: name, Engine: "serve",
				Qubits: qubits, Wall: st,
				ConvertedAt: -1, DMAVCacheHitRate: -1,
				CacheHitRate: rate,
			})
		}
	}
	emit(cfg, "tenants", tbl)
}
