package harness

import (
	"fmt"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/obs"
	"flatdd/internal/perf"
)

// memDelta is the per-repetition allocation cost of one benchmark cell,
// from the runtime/metrics allocation sampler (process-wide, so only
// meaningful because cells run one at a time). Unlike the former
// runtime.ReadMemStats path this does not stop the world, so sampling
// at cell boundaries is free even inside timed regions.
type memDelta struct {
	allocBytes uint64
	mallocs    uint64
}

// runReps executes one engine cell cfg.Reps times and summarizes the
// repetitions. The returned Result is the last repetition, with two
// adjustments: TimedOut is true if any repetition timed out, and when
// cfg.Metrics is set, Result.Metrics is replaced by the registry delta
// over the whole cell (Snapshot.Delta), so a registry shared across
// experiments still yields per-cell counters. Allocation tracking only
// runs when a record is being built.
func (c Config) runReps(run func() Result) (Result, perf.Stat, memDelta) {
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	prev := c.Metrics.Snapshot()
	var as0 obs.AllocSample
	if c.Record != nil {
		as0 = obs.ReadAllocSample()
	}
	var last Result
	timedOut := false
	ns := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		last = run()
		ns = append(ns, float64(last.Runtime.Nanoseconds()))
		timedOut = timedOut || last.TimedOut
	}
	last.TimedOut = timedOut
	var md memDelta
	if c.Record != nil {
		d := obs.ReadAllocSample().Sub(as0)
		md.allocBytes = d.Bytes / uint64(reps)
		md.mallocs = d.Objects / uint64(reps)
	}
	if c.Metrics != nil {
		d := c.Metrics.Snapshot().Delta(prev)
		last.Metrics = &d
	}
	return last, perf.NewStat(ns), md
}

// recordCell appends one cell to the run's perf record; no-op when no
// record is being built. threads is only passed for experiments that
// sweep thread counts (it joins the alignment key then); pass 0 when the
// record-wide thread count applies.
func (c Config) recordCell(exp string, r Result, wall perf.Stat, md memDelta, threads int) {
	if c.Record == nil {
		return
	}
	cell := perf.Cell{
		Exp: exp, Circuit: r.Circuit, Engine: r.Engine, Threads: threads,
		Qubits: r.Qubits, Gates: r.Gates,
		Wall: wall, TimedOut: r.TimedOut,
		ConvertedAt: r.ConvertedAt, DMAVCacheHitRate: -1,
		MemoryBytes:      r.Memory,
		AllocBytesPerRep: md.allocBytes, MallocsPerRep: md.mallocs,
	}
	if r.Gates > 0 {
		cell.NsPerGate = wall.MeanNs / float64(r.Gates)
	}
	if r.Stats != nil {
		cell.PeakDDNodes = r.Stats.PeakDDNodes
		if res := r.Stats.Resources; res != nil {
			cell.AllocPeakBytes = res.PeakBytes
			cell.CPUNs = res.CPUNs
		}
	}
	if r.Metrics != nil {
		hits := r.Metrics.Counters["dmav.cache.hits"]
		total := hits + r.Metrics.Counters["dmav.cache.misses"]
		if total > 0 {
			cell.DMAVCacheHitRate = float64(hits) / float64(total)
		}
		cell.SchedTasks = r.Metrics.Counters["sched.tasks"]
		cell.SchedSteals = r.Metrics.Counters["sched.steals"]
		cell.SchedIdleNs = r.Metrics.Counters["sched.idle_ns"]
	}
	c.Record.Add(cell)
}

// flatOpts is the default FlatDD option set for recorded experiments: the
// configured thread count, instrumented when a shared registry is
// present.
func (c Config) flatOpts() core.Options {
	return core.Options{Threads: c.Threads, Metrics: c.Metrics}
}

// fmtRun renders one cell's wall time for the printed tables: the
// repetition mean, the timeout marker, and ±stddev once there is more
// than one repetition.
func fmtRun(r Result, w perf.Stat) string {
	s := fmtSeconds(time.Duration(w.MeanNs))
	if r.TimedOut {
		s = "> " + s
	}
	if w.N > 1 {
		s += fmt.Sprintf(" ±%s", fmtSeconds(time.Duration(w.StddevNs)))
	}
	return s
}
