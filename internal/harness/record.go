package harness

import (
	"fmt"
	"runtime"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/perf"
)

// memDelta is the per-repetition allocation cost of one benchmark cell,
// from runtime.MemStats (process-wide, so only meaningful because cells
// run one at a time).
type memDelta struct {
	allocBytes uint64
	mallocs    uint64
}

// runReps executes one engine cell cfg.Reps times and summarizes the
// repetitions. The returned Result is the last repetition, with two
// adjustments: TimedOut is true if any repetition timed out, and when
// cfg.Metrics is set, Result.Metrics is replaced by the registry delta
// over the whole cell (Snapshot.Delta), so a registry shared across
// experiments still yields per-cell counters. Allocation tracking only
// runs when a record is being built.
func (c Config) runReps(run func() Result) (Result, perf.Stat, memDelta) {
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	prev := c.Metrics.Snapshot()
	var ms0 runtime.MemStats
	if c.Record != nil {
		runtime.ReadMemStats(&ms0)
	}
	var last Result
	timedOut := false
	ns := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		last = run()
		ns = append(ns, float64(last.Runtime.Nanoseconds()))
		timedOut = timedOut || last.TimedOut
	}
	last.TimedOut = timedOut
	var md memDelta
	if c.Record != nil {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		md.allocBytes = (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(reps)
		md.mallocs = (ms1.Mallocs - ms0.Mallocs) / uint64(reps)
	}
	if c.Metrics != nil {
		d := c.Metrics.Snapshot().Delta(prev)
		last.Metrics = &d
	}
	return last, perf.NewStat(ns), md
}

// recordCell appends one cell to the run's perf record; no-op when no
// record is being built. threads is only passed for experiments that
// sweep thread counts (it joins the alignment key then); pass 0 when the
// record-wide thread count applies.
func (c Config) recordCell(exp string, r Result, wall perf.Stat, md memDelta, threads int) {
	if c.Record == nil {
		return
	}
	cell := perf.Cell{
		Exp: exp, Circuit: r.Circuit, Engine: r.Engine, Threads: threads,
		Qubits: r.Qubits, Gates: r.Gates,
		Wall: wall, TimedOut: r.TimedOut,
		ConvertedAt: r.ConvertedAt, DMAVCacheHitRate: -1,
		MemoryBytes:      r.Memory,
		AllocBytesPerRep: md.allocBytes, MallocsPerRep: md.mallocs,
	}
	if r.Gates > 0 {
		cell.NsPerGate = wall.MeanNs / float64(r.Gates)
	}
	if r.Stats != nil {
		cell.PeakDDNodes = r.Stats.PeakDDNodes
	}
	if r.Metrics != nil {
		hits := r.Metrics.Counters["dmav.cache.hits"]
		total := hits + r.Metrics.Counters["dmav.cache.misses"]
		if total > 0 {
			cell.DMAVCacheHitRate = float64(hits) / float64(total)
		}
		cell.SchedTasks = r.Metrics.Counters["sched.tasks"]
		cell.SchedSteals = r.Metrics.Counters["sched.steals"]
		cell.SchedIdleNs = r.Metrics.Counters["sched.idle_ns"]
	}
	c.Record.Add(cell)
}

// flatOpts is the default FlatDD option set for recorded experiments: the
// configured thread count, instrumented when a shared registry is
// present.
func (c Config) flatOpts() core.Options {
	return core.Options{Threads: c.Threads, Metrics: c.Metrics}
}

// fmtRun renders one cell's wall time for the printed tables: the
// repetition mean, the timeout marker, and ±stddev once there is more
// than one repetition.
func fmtRun(r Result, w perf.Stat) string {
	s := fmtSeconds(time.Duration(w.MeanNs))
	if r.TimedOut {
		s = "> " + s
	}
	if w.N > 1 {
		s += fmt.Sprintf(" ±%s", fmtSeconds(time.Duration(w.StddevNs)))
	}
	return s
}
