package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Table is a simple text-table builder for the experiment reports.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row (values are formatted with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		case time.Duration:
			row[i] = fmtSeconds(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "%s\n", t.title)
	}
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	writeRow(t.headers)
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	fmt.Fprintln(w)
}

// fmtSeconds renders a duration in seconds with adaptive precision, the
// unit used throughout the paper's tables.
func fmtSeconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 0.001:
		return fmt.Sprintf("%.2f ms", s*1000)
	default:
		return fmt.Sprintf("%.0f µs", s*1e6)
	}
}

func fmtFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.2e", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// fmtMB renders a byte count in MB, the paper's memory unit.
func fmtMB(b uint64) string {
	return fmt.Sprintf("%.2f MB", float64(b)/1e6)
}

// fmtSpeedup renders a speed-up factor, with the paper's ">" prefix when
// the baseline timed out (so the true factor is at least this large).
func fmtSpeedup(f float64, lowerBound bool) string {
	prefix := ""
	if lowerBound {
		prefix = "> "
	}
	return fmt.Sprintf("%s%.2fx", prefix, f)
}

// GeoMean returns the geometric mean of positive values (the paper's
// average for data with exponential spread). Non-positive values are
// skipped; an empty input yields 0.
func GeoMean(vals []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// GeoMeanDurations is GeoMean over durations in seconds.
func GeoMeanDurations(ds []time.Duration) float64 {
	vals := make([]float64, len(ds))
	for i, d := range ds {
		vals[i] = d.Seconds()
	}
	return GeoMean(vals)
}
