package harness

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"flatdd/internal/cluster"
	"flatdd/internal/perf"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// Cluster runs the fault-tolerant cluster serving experiment: three
// in-process flatdd-serve replicas behind the coordinator take a
// zipf-skewed stream of QV jobs routed by consistent hashing on the
// canonical circuit hash, and the table reports per-replica job counts,
// cache absorption, and end-to-end latency percentiles. The skew means
// a few circuits dominate the stream; hash routing pins each of them to
// one replica, so the per-replica result caches absorb repeats exactly
// as a single server's would — the cluster scales the cache, it does
// not dilute it.
func Cluster(cfg Config) {
	cfg = cfg.withDefaults()
	var jobs, qubits int
	switch cfg.Scale {
	case ScaleTiny:
		jobs, qubits = 24, 8
	case ScalePaper:
		jobs, qubits = 240, 16
	default:
		jobs, qubits = 80, 12
	}
	const nReplicas = 3

	specs := make([]cluster.ReplicaSpec, 0, nReplicas)
	for i := 0; i < nReplicas; i++ {
		srv := serve.New(serve.Config{
			Threads:        cfg.Threads,
			MaxInFlight:    2,
			QueueDepth:     jobs + 2,
			DefaultTimeout: cfg.Timeout,
		})
		defer srv.Shutdown()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		specs = append(specs, cluster.ReplicaSpec{
			Name: fmt.Sprintf("r%d", i+1), URL: ts.URL,
		})
	}
	coord, err := cluster.New(cluster.Config{Replicas: specs})
	if err != nil {
		fmt.Fprintf(cfg.Out, "cluster: %v\n", err)
		return
	}
	defer coord.Shutdown()
	front := httptest.NewServer(coord.Handler())
	defer front.Close()
	c := client.New(front.URL)

	// Zipf-skewed circuit popularity over a pool of distinct QV circuits:
	// rank-1 dominates, so the stream is mostly repeats of a few keys.
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.2, 1, 15)
	ctx := context.Background()
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		resp, err := c.Submit(ctx, &serve.SubmitRequest{
			Circuit: "qv", N: qubits, Seed: 1 + int64(zipf.Uint64()), Shots: 100,
			TimeoutMS: cfg.Timeout.Milliseconds(),
		})
		if err != nil {
			fmt.Fprintf(cfg.Out, "cluster: submit %d failed: %v\n", i, err)
			continue
		}
		ids = append(ids, resp.Job.ID)
	}

	// Wait out every job and attribute its end-to-end latency (submission
	// to terminal state, server-side) and cache disposition to the
	// replica the coordinator routed it to.
	latNs := map[string][]float64{}
	absorbed := map[string]int{}
	routed := map[string]int{}
	for _, id := range ids {
		wctx, cancel := context.WithTimeout(ctx, cfg.Timeout+30*time.Second)
		v, err := c.Wait(wctx, id, 2*time.Millisecond)
		cancel()
		if err != nil || v.FinishedAt == nil {
			fmt.Fprintf(cfg.Out, "cluster: wait %s: %v\n", id, err)
			continue
		}
		name := v.Replica
		if name == "" {
			name = "?" // never routed (all candidates down)
		}
		routed[name]++
		if v.Cache == serve.CacheHit || v.Cache == serve.CacheCoalesced {
			absorbed[name]++
		}
		latNs[name] = append(latNs[name], float64(v.FinishedAt.Sub(v.SubmittedAt)))
	}

	tbl := NewTable("Cluster serving: zipf QV load over 3 hash-routed replicas, per-replica latency",
		"Replica", "Jobs", "Cache absorbed", "p50", "p95", "p99")
	for _, spec := range specs {
		name := spec.Name
		st := perf.NewStat(latNs[name])
		rate := 0.0
		if routed[name] > 0 {
			rate = float64(absorbed[name]) / float64(routed[name])
		}
		tbl.AddRow(name, routed[name], fmt.Sprintf("%.0f%%", 100*rate),
			fmtSeconds(time.Duration(st.P50Ns)),
			fmtSeconds(time.Duration(st.P95Ns)),
			fmtSeconds(time.Duration(st.P99Ns)))
		if cfg.Record != nil {
			cfg.Record.Add(perf.Cell{
				Exp: "cluster", Circuit: name, Engine: "cluster",
				Qubits: qubits, Wall: st,
				ConvertedAt: -1, DMAVCacheHitRate: -1,
				CacheHitRate: rate,
			})
		}
	}
	emit(cfg, "cluster", tbl)
}
