// Qasmfile: parse an OpenQASM 2.0 program (with a custom gate definition
// and parameter expressions) and cross-check the three engines against each
// other on it — the workflow for running QASMBench / MQT-Bench files.
//
//	go run ./examples/qasmfile
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"flatdd/internal/core"
	"flatdd/internal/ddsim"
	"flatdd/internal/qasm"
	"flatdd/internal/statevec"
)

const program = `
OPENQASM 2.0;
include "qelib1.inc";

// a custom two-qubit block used below
gate entangle(theta) a, b {
  ry(theta/2) a;
  cx a, b;
  rz(theta*3/4) b;
  cx a, b;
}

qreg q[8];
creg c[8];

h q;                       // broadcast over the register
entangle(pi/3) q[0], q[4];
entangle(pi/5) q[1], q[5];
entangle(pi/7) q[2], q[6];
ccx q[0], q[1], q[7];
cp(pi/9) q[3], q[7];
measure q -> c;
`

func main() {
	c, err := qasm.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed: %d qubits, %d gates after macro expansion\n", c.Qubits, c.GateCount())

	// Run all three engines.
	hybrid := core.New(c.Qubits, core.Options{Threads: 2})
	hybrid.Run(c)
	hAmps := hybrid.Amplitudes()

	pure := ddsim.New(c.Qubits)
	pure.Run(c)
	dAmps := pure.ToArray()

	sv := statevec.New(c.Qubits, 2)
	sv.ApplyCircuit(c)
	aAmps := sv.Amplitudes()

	worst := 0.0
	for i := range hAmps {
		if d := cmplx.Abs(hAmps[i] - dAmps[i]); d > worst {
			worst = d
		}
		if d := cmplx.Abs(hAmps[i] - aAmps[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("FlatDD vs DDSIM vs array: max amplitude deviation = %.2e\n", worst)
	if worst > 1e-9 {
		log.Fatal("engines disagree!")
	}
	fmt.Println("all three engines agree on the final state")
}
