// Supremacy: simulate a Google-quantum-supremacy-style random circuit — the
// motivating irregular workload of the FlatDD paper — with all three
// engines and show why the hybrid wins: the pure DD engine's per-gate cost
// explodes as the state scrambles, the array engine is steady but pays
// generic-indexing overhead, and FlatDD rides the DD phase while it is
// cheap, then switches to DMAV.
//
//	go run ./examples/supremacy
package main

import (
	"fmt"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/harness"
	"flatdd/internal/workloads"
)

func main() {
	const n = 12
	c := workloads.SupremacyGrid(n, 40, 7)
	fmt.Printf("supremacy circuit: %d qubits (grid), %d gates, depth %d\n\n",
		c.Qubits, c.GateCount(), c.Depth())

	// FlatDD with a per-gate trace so we can watch the switch happen.
	var converted int
	opts := core.Options{Threads: 4, Trace: func(e core.TraceEvent) {
		if e.Converted {
			converted = e.GateIndex
		}
	}}
	flat := harness.RunFlatDD(c, opts, time.Minute)
	fmt.Printf("FlatDD:    %10v  (DD phase until gate %d, then parallel DMAV)\n",
		flat.Runtime, converted)
	fmt.Printf("           dd=%v convert=%v dmav=%v, %d/%d DMAV gates used caching\n",
		flat.Stats.DDTime, flat.Stats.ConversionTime, flat.Stats.DMAVTime,
		flat.Stats.DMAVStats.CachedGates, flat.Stats.DMAVStats.Gates)

	dd := harness.RunDDSIM(c, time.Minute)
	fmt.Printf("DDSIM:     %10v  (pure DD: %s)\n", dd.Runtime, timedOut(dd))

	sv := harness.RunStatevec(c, 4, time.Minute)
	fmt.Printf("Quantum++: %10v  (flat array)\n\n", sv.Runtime)

	fmt.Printf("speed-up vs DDSIM:     %.2fx\n", dd.Runtime.Seconds()/flat.Runtime.Seconds())
	fmt.Printf("speed-up vs Quantum++: %.2fx\n", sv.Runtime.Seconds()/flat.Runtime.Seconds())
}

func timedOut(r harness.Result) string {
	if r.TimedOut {
		return "timed out"
	}
	return "completed"
}
