// Noisy: simulate a Bell-pair experiment under realistic device noise
// using the density-matrix decision-diagram engine, and watch entanglement
// quality degrade as the depolarizing rate grows.
//
//	go run ./examples/noisy
package main

import (
	"fmt"

	"flatdd/internal/circuit"
	"flatdd/internal/noise"
)

func main() {
	fmt.Println("Bell pair under per-gate depolarizing noise")
	fmt.Println("p        P(00)    P(11)    P(01)+P(10)  purity")
	for _, p := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.5} {
		model := noise.Model{}
		if p > 0 {
			model.GateNoise = []noise.Channel{noise.Depolarizing(p)}
		}
		s := noise.New(2, model)
		c := circuit.New("bell", 2)
		c.Append(circuit.H(0), circuit.CX(0, 1))
		s.Run(c)
		probs := s.Probabilities()
		fmt.Printf("%-8.2f %-8.4f %-8.4f %-12.4f %.4f\n",
			p, probs[0], probs[3], probs[1]+probs[2], s.Purity())
	}

	fmt.Println("\nGHZ-8 with T1 relaxation after every gate")
	for _, gamma := range []float64{0, 0.02, 0.1} {
		model := noise.Model{}
		if gamma > 0 {
			model.GateNoise = []noise.Channel{noise.AmplitudeDamping(gamma)}
		}
		s := noise.New(8, model)
		c := circuit.New("ghz", 8)
		c.Append(circuit.H(0))
		for q := 1; q < 8; q++ {
			c.Append(circuit.CX(q-1, q))
		}
		s.Run(c)
		probs := s.Probabilities()
		fmt.Printf("gamma=%-5.2f  P(|0..0>)=%.4f  P(|1..1>)=%.4f  purity=%.4f  DD nodes=%d\n",
			gamma, probs[0], probs[255], s.Purity(), s.Manager().MSize(s.Rho()))
	}
}
