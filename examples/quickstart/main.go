// Quickstart: build a circuit, simulate it with the FlatDD hybrid engine,
// and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"flatdd/internal/circuit"
	"flatdd/internal/core"
)

func main() {
	// 1. Build a circuit: a 12-qubit GHZ state followed by a layer of
	// T gates (phases don't change the measurement distribution).
	const n = 12
	c := circuit.New("quickstart", n)
	c.Append(circuit.H(0))
	for q := 1; q < n; q++ {
		c.Append(circuit.CX(q-1, q))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.T(q))
	}
	fmt.Printf("circuit: %d qubits, %d gates, depth %d\n", c.Qubits, c.GateCount(), c.Depth())

	// 2. Simulate with FlatDD. The engine starts with DD-based simulation
	// and converts to flat-array DMAV only if the state turns irregular —
	// a GHZ state is perfectly regular, so this run never converts.
	sim := core.New(n, core.Options{Threads: 4})
	stats := sim.Run(c)
	if stats.ConvertedAtGate < 0 {
		fmt.Println("state stayed regular: the whole run used the compact DD representation")
	} else {
		fmt.Printf("state turned irregular at gate %d: converted to DMAV\n", stats.ConvertedAtGate)
	}
	fmt.Printf("runtime: %v, peak DD nodes: %d\n", stats.TotalTime, stats.PeakDDNodes)

	// 3. Inspect amplitudes directly...
	fmt.Printf("amp(|0...0>) = %v\n", sim.Amplitude(0))
	fmt.Printf("amp(|1...1>) = %v\n", sim.Amplitude(1<<n-1))

	// 4. ...or sample measurement shots.
	counts := sim.Sample(rand.New(rand.NewSource(42)), 1000)
	fmt.Println("1000 shots:")
	for idx, cnt := range counts {
		fmt.Printf("  |%0*b>: %d\n", n, idx, cnt)
	}
}
