// VQE: evaluate the energy of a transverse-field Ising Hamiltonian
//
//	H = -J * sum_i Z_i Z_{i+1} - h * sum_i X_i
//
// on a hardware-efficient variational ansatz, using FlatDD as the
// state-vector backend. This is the "irregular circuit" family from the
// paper's Figure 1: random rotation angles break the state's regularity,
// so the engine converts to DMAV early.
//
//	go run ./examples/vqe
package main

import (
	"fmt"
	"math"

	"flatdd/internal/core"
	"flatdd/internal/workloads"
)

const (
	n = 10
	J = 1.0
	h = 0.5
)

func main() {
	best := math.Inf(1)
	var bestSeed int64
	for seed := int64(1); seed <= 8; seed++ {
		c := workloads.VQE(n, 3, seed)
		sim := core.New(n, core.Options{Threads: 4})
		stats := sim.Run(c)
		e := energy(sim.Amplitudes())
		conv := "dd-only"
		if stats.ConvertedAtGate >= 0 {
			conv = fmt.Sprintf("dmav@%d", stats.ConvertedAtGate)
		}
		fmt.Printf("ansatz seed %d: E = %+.5f  (%v, %s)\n", seed, e, stats.TotalTime, conv)
		if e < best {
			best, bestSeed = e, seed
		}
	}
	fmt.Printf("\nbest ansatz: seed %d with E = %+.5f\n", bestSeed, best)
	fmt.Printf("(exact diagonal bound for reference: E >= %.5f)\n", -J*float64(n-1)-h*float64(n))
}

// energy computes <psi|H|psi> directly from the amplitudes: Z_i Z_{i+1} is
// diagonal; X_i pairs amplitudes that differ in bit i.
func energy(amps []complex128) float64 {
	e := 0.0
	for idx, a := range amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p == 0 {
			continue
		}
		// ZZ terms.
		for i := 0; i+1 < n; i++ {
			zi := 1.0 - 2.0*float64(idx>>uint(i)&1)
			zj := 1.0 - 2.0*float64(idx>>uint(i+1)&1)
			e += -J * zi * zj * p
		}
	}
	// X terms: <psi|X_i|psi> = sum_s conj(amp[s]) * amp[s^(1<<i)].
	for i := 0; i < n; i++ {
		x := 0.0
		for idx, a := range amps {
			b := amps[idx^1<<uint(i)]
			x += real(a)*real(b) + imag(a)*imag(b)
		}
		e += -h * x
	}
	return e
}
