module flatdd

go 1.24
