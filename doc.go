// Package flatdd is a from-scratch Go reproduction of "FlatDD: A
// High-Performance Quantum Circuit Simulator using Decision Diagram and
// Flat Array" (Jiang et al., ICPP 2024).
//
// The simulator lives in internal/core; the substrates it is built on are:
//
//   - internal/cnum — tolerance-based complex-number interning
//   - internal/dd — the QMDD decision-diagram kernel
//   - internal/circuit, internal/qasm — circuit IR and OpenQASM 2.0 parser
//   - internal/statevec — the array-based baseline (Quantum++ substitute)
//   - internal/ddsim — the pure-DD baseline (DDSIM substitute)
//   - internal/dmav — DD-matrix x flat-array-vector multiplication with
//     per-thread caching and the MAC cost model
//   - internal/convert — parallel DD-to-array state conversion
//   - internal/ewma — the conversion-timing controller
//   - internal/fusion — DMAV-aware gate fusion and the k-operations baseline
//   - internal/workloads, internal/harness — benchmark circuits and the
//     experiment harness reproducing every table and figure of the paper
//
// Entry points: cmd/flatdd (simulate a circuit), cmd/flatdd-bench
// (regenerate the paper's evaluation), and the runnable programs under
// examples/. The benchmarks in bench_test.go map one-to-one onto the
// paper's tables and figures; see DESIGN.md for the index and
// EXPERIMENTS.md for measured-vs-paper results.
package flatdd
