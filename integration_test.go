package flatdd

// Cross-engine integration tests: the three engines (pure DD, flat array,
// hybrid FlatDD in every configuration) must produce identical final
// states on randomized and structured circuits, and whole quantum
// algorithms must produce their textbook outcomes end to end.

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/core"
	"flatdd/internal/ddsim"
	"flatdd/internal/dmav"
	"flatdd/internal/qasm"
	"flatdd/internal/statevec"
	"flatdd/internal/workloads"
)

const intEps = 1e-8

func maxDeviation(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func engines(t *testing.T, c *circuit.Circuit) (hybrid, pure, array []complex128) {
	t.Helper()
	h := core.New(c.Qubits, core.Options{Threads: 4})
	h.Run(c)
	hybrid = h.Amplitudes()

	d := ddsim.New(c.Qubits)
	d.Run(c)
	pure = d.ToArray()

	s := statevec.New(c.Qubits, 2)
	s.ApplyCircuit(c)
	array = s.Amplitudes()
	return
}

func TestEnginesAgreeOnEveryWorkloadFamily(t *testing.T) {
	cases := []*circuit.Circuit{
		workloads.GHZ(10),
		workloads.Adder(10, 3),
		workloads.DNN(8, 6, 5),
		workloads.VQE(9, 2, 7),
		workloads.KNN(9, 11),
		workloads.SwapTest(9, 13),
		workloads.SupremacyGrid(9, 8, 17),
		workloads.QFT(9),
		workloads.BernsteinVazirani(8, 0x5a),
		workloads.Grover(6, 37, 0),
	}
	for _, c := range cases {
		hybrid, pure, array := engines(t, c)
		if d := maxDeviation(hybrid, array); d > intEps {
			t.Errorf("%s: FlatDD vs array deviation %.2e", c.Name, d)
		}
		if d := maxDeviation(pure, array); d > intEps {
			t.Errorf("%s: DDSIM vs array deviation %.2e", c.Name, d)
		}
	}
}

func TestFlatDDConfigurationsAgree(t *testing.T) {
	c := workloads.SupremacyGrid(9, 10, 23)
	ref := statevec.New(c.Qubits, 1)
	ref.ApplyCircuit(c)
	configs := []core.Options{
		{Threads: 1},
		{Threads: 8},
		{Threads: 4, ForceConvertAfter: 1},
		{Threads: 4, DisableConversion: true},
		{Threads: 4, CacheMode: dmav.AlwaysCache},
		{Threads: 4, CacheMode: dmav.NeverCache},
		{Threads: 4, Fusion: core.DMAVAware},
		{Threads: 4, Fusion: core.KOps, K: 5},
		{Threads: 4, SequentialConversion: true},
		{Threads: 4, Beta: 0.5, Epsilon: 1.5},
	}
	for i, opts := range configs {
		s := core.New(c.Qubits, opts)
		s.Run(c)
		if d := maxDeviation(s.Amplitudes(), ref.Amplitudes()); d > intEps {
			t.Errorf("config %d (%+v): deviation %.2e", i, opts, d)
		}
	}
}

func TestQFTInverseIsIdentity(t *testing.T) {
	// QFT followed by its inverse (reversed gates with negated phases)
	// must restore the input basis state.
	n := 8
	c := circuit.New("qft-roundtrip", n)
	input := uint64(0xA5) & (1<<n - 1)
	for q := 0; q < n; q++ {
		if input>>uint(q)&1 == 1 {
			c.Append(circuit.X(q))
		}
	}
	fwd := workloads.QFT(n)
	c.Append(fwd.Gates...)
	// Inverse: reverse order, conjugate parameters.
	for i := len(fwd.Gates) - 1; i >= 0; i-- {
		g := fwd.Gates[i]
		switch g.Name {
		case "h", "swap":
			c.Append(g)
		case "cp":
			c.Append(circuit.CP(-g.Params[0], g.Controls[0].Qubit, g.Targets[0]))
		default:
			t.Fatalf("unexpected QFT gate %s", g.Name)
		}
	}
	s := core.New(n, core.Options{Threads: 2})
	s.Run(c)
	p := s.Probabilities()[input]
	if math.Abs(p-1) > intEps {
		t.Fatalf("QFT round trip lost the state: P(input)=%v", p)
	}
}

func TestGroverEndToEndOnFlatDD(t *testing.T) {
	n := 6
	marked := uint64(45)
	c := workloads.Grover(n, marked, 0)
	s := core.New(n, core.Options{Threads: 4})
	s.Run(c)
	if p := s.Probabilities()[marked]; p < 0.9 {
		t.Fatalf("Grover on FlatDD: P(marked)=%v", p)
	}
}

func TestAdderOnAllEnginesIsExact(t *testing.T) {
	c := workloads.Adder(12, 9)
	hybrid, pure, array := engines(t, c)
	// The result must be one exact basis state on every engine.
	for name, amps := range map[string][]complex128{"flatdd": hybrid, "ddsim": pure, "array": array} {
		ones := 0
		for _, a := range amps {
			p := real(a)*real(a) + imag(a)*imag(a)
			if p > 0.5 {
				ones++
			} else if p > intEps {
				t.Fatalf("%s: non-basis amplitude %v", name, a)
			}
		}
		if ones != 1 {
			t.Fatalf("%s: %d dominant states", name, ones)
		}
	}
}

func TestQASMPipelineEndToEnd(t *testing.T) {
	// Emit the Bell + phase-kickback program through the parser, then
	// through FlatDD, and check the distribution.
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
`
	c, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := core.New(c.Qubits, core.Options{})
	s.Run(c)
	probs := s.Probabilities()
	if math.Abs(probs[0]-0.5) > intEps || math.Abs(probs[7]-0.5) > intEps {
		t.Fatalf("GHZ-3 via QASM: %v", probs)
	}
}

func TestRandomizedDifferentialSweep(t *testing.T) {
	// Differential testing across a seed sweep: any disagreement between
	// the hybrid engine and the array oracle is a bug somewhere in the DD
	// stack.
	if testing.Short() {
		t.Skip("long differential sweep")
	}
	rng := rand.New(rand.NewSource(20240812))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(6)
		gates := 10 + rng.Intn(60)
		c := circuit.New("diff", n)
		for len(c.Gates) < gates {
			switch rng.Intn(8) {
			case 0:
				c.Append(circuit.H(rng.Intn(n)))
			case 1:
				c.Append(circuit.U3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.Intn(n)))
			case 2:
				c.Append(circuit.SW(rng.Intn(n)))
			case 3:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.CX(a, b))
				}
			case 4:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.FSim(rng.NormFloat64(), rng.NormFloat64(), a, b))
				}
			case 5:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.SWAP(a, b))
				}
			case 6:
				if n >= 3 {
					a, b, cc := rng.Intn(n), rng.Intn(n), rng.Intn(n)
					if a != b && b != cc && a != cc {
						c.Append(circuit.CCX(a, b, cc))
					}
				}
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.CRZ(rng.NormFloat64(), a, b))
				}
			}
		}
		hybrid, pure, array := engines(t, c)
		if d := maxDeviation(hybrid, array); d > intEps {
			t.Fatalf("trial %d (n=%d, %d gates): FlatDD deviates %.2e", trial, n, gates, d)
		}
		if d := maxDeviation(pure, array); d > intEps {
			t.Fatalf("trial %d: DDSIM deviates %.2e", trial, d)
		}
	}
}
