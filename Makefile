GO ?= go

# staticcheck is optional but pinned: when the binary is on PATH it must
# be this version, so two machines never disagree about what `make
# check` enforces. Install with:
#   go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
STATICCHECK ?= staticcheck
STATICCHECK_VERSION ?= 2025.1

.PHONY: build test check staticcheck profile-smoke faults dd-race fuzz serve-smoke chaos trace-schema bench-obs bench-record bench-gate csv

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: full vet, the race detector over the
# whole module in short mode (the sched pool, DMAV workers, conversion
# tasks, and the obs registry all run concurrently; short mode keeps the
# differential and stress suites at their quick defaults), and a smoke
# run of the perf-record + benchdiff pipeline.
check:
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(GO) test -race -short ./...
	$(MAKE) dd-race
	$(MAKE) faults
	$(MAKE) chaos
	$(MAKE) serve-smoke
	$(MAKE) profile-smoke
	$(MAKE) trace-schema
	$(MAKE) bench-record
	$(MAKE) bench-gate

# staticcheck is presence-gated: boxes without the binary (hermetic CI
# images, fresh clones) skip it with a note instead of failing, and a
# wrong version fails loudly rather than enforcing a different rule set.
# The check allowlist lives in staticcheck.conf at the repo root
# (staticcheck reads it automatically); suppress a finding by narrowing
# that file, never by sprinkling //lint:ignore in code.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		got=$$($(STATICCHECK) -version 2>/dev/null); \
		case "$$got" in \
		*"$(STATICCHECK_VERSION)"*) $(STATICCHECK) ./... ;; \
		*) echo "staticcheck: have '$$got', want $(STATICCHECK_VERSION); refusing to run a drifted linter" >&2; exit 1 ;; \
		esac; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# profile-smoke drives the anomaly-profiling path end to end under the
# race detector: an SLO-breaching burst must produce exactly one pprof
# capture (rate window), and the on-disk ring must rotate — evicted
# captures' files deleted, survivors intact.
profile-smoke:
	$(GO) test -race -count=1 -run 'TestAnomalyCaptureRateLimited|TestProfileRing' \
		./internal/serve ./internal/obs

# faults runs the fault-injection and graceful-degradation suites under
# the race detector: contained worker panics (sched, core, serve),
# budget- and allocation-driven DD-only degradation, numerical-integrity
# aborts, and the serve retry/backoff path. These overlap -short above
# only partially (count=1 defeats the test cache so injected faults
# always re-fire).
faults:
	$(GO) test -race -count=1 ./internal/faults/...
	$(GO) test -race -count=1 -run 'Fault|Degraded|Drift|TaskPanic' \
		./internal/sched/... ./internal/core/... ./internal/serve/...

# dd-race runs the DD-phase concurrency battery under the race detector:
# sharded unique tables, striped compute tables, the GC barrier, and the
# frontier-split parallel multiply, asserting bit-identical results
# against the sequential path. count=2 defeats the test cache and varies
# goroutine scheduling across the two runs.
dd-race:
	$(GO) test -race -run 'Par|Concurrent' -count=2 \
		./internal/dd/... ./internal/ddsim/... ./internal/cnum/...

# serve-smoke builds the flatdd-serve and flatdd-coord binaries
# race-enabled and drives them end to end over HTTP: admission control
# (413 over budget), bell + randct jobs to completion, client
# cancellation of a running QV job, the in-flight cap under concurrent
# submits, SIGTERM drains to exit 0, and — through the coordinator — a
# two-replica cluster with hash-routed cache locality, a replica kill
# surfacing in /healthz membership, and post-failover serving.
serve-smoke:
	$(GO) test -race -run TestServeSmoke -count=1 ./cmd/flatdd-serve
	$(GO) test -race -run TestCoordSmoke -count=1 ./cmd/flatdd-coord

# chaos runs the cluster chaos suite under the race detector: a
# three-replica in-process fleet behind the coordinator with seeded
# fault injection (replica down, RPC timeout, slow RPC) — kill/revive
# mid-burst with zero lost acknowledged jobs, breaker open/half-open
# recovery, and terminal views served through a total outage. The seed
# comes from FLATDD_CHAOS_SEED (default 1) so failures replay exactly;
# -timeout bounds the whole suite well under the per-test waits.
chaos:
	FLATDD_CHAOS_SEED=$${FLATDD_CHAOS_SEED:-1} $(GO) test -race -count=1 -timeout 300s ./internal/cluster/

# trace-schema pins the span JSONL wire format (the golden file under
# internal/obs/testdata) and the TraceWriter's sticky-error contract:
# external consumers parse the stream, so a field rename is a breaking
# change this target catches. Regenerate deliberately with
# UPDATE_SPAN_GOLDEN=1 go test ./internal/obs -run SpanSchemaGolden.
trace-schema:
	$(GO) test -count=1 -run 'SpanSchemaGolden|TraceWriterSticky' ./internal/obs

# fuzz runs the OpenQASM parser fuzzer for a bounded slice of time, seeded
# from internal/qasm/testdata/fuzz. A crasher is written to that directory
# and replays as a regular test case on the next `go test`.
fuzz:
	$(GO) test -run NoSuchTest -fuzz FuzzParse -fuzztime 10s ./internal/qasm

# bench-record emits a machine-readable perf record (BENCH_<n>.json at the
# repo root) from a tiny-scale Table 1 run, the parallel-DD-phase thread
# sweep, and the multi-tenant and cluster serving experiments: 2
# repetitions per cell plus sampled time series. Run it once per
# meaningful commit to grow the performance history benchdiff compares
# against.
bench-record:
	$(GO) run ./cmd/flatdd-bench -exp table1,ddpar,tenants,cluster -scale tiny -reps 2 -timeout 60s -out auto

# bench-gate diffs the newest record against the one before it and fails
# on any wall-time regression beyond the noise guard (CI gate). With only
# one record on disk it self-compares and trivially passes. The 25ms
# floor keeps tiny-scale micro-cells (which time the scheduler, not the
# engine) out of the verdict; at small/paper scale every cell clears it.
bench-gate:
	$(GO) run ./cmd/flatdd-benchdiff -fail-on-regress -min-time 25ms

# bench-obs reproduces the instrumentation-overhead numbers recorded in
# EXPERIMENTS.md (run several times and compare pairs; the signal is
# smaller than machine noise on a loaded box).
bench-obs:
	$(GO) test -run xxx -bench ObsOverhead -benchtime 2s -count 3 .

csv:
	$(GO) run ./cmd/flatdd-bench -exp all -csv out/csv
