GO ?= go

.PHONY: build test check bench-obs csv

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: full vet plus the race detector over the
# concurrency-heavy packages (the obs registry is hammered from worker
# goroutines; core drives every instrumented layer end to end).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/core/...

# bench-obs reproduces the instrumentation-overhead numbers recorded in
# EXPERIMENTS.md (run several times and compare pairs; the signal is
# smaller than machine noise on a loaded box).
bench-obs:
	$(GO) test -run xxx -bench ObsOverhead -benchtime 2s -count 3 .

csv:
	$(GO) run ./cmd/flatdd-bench -exp all -csv out/csv
